// Per-block ground truth: the taxonomy of /24 blocks the paper's filter
// funnel partitions (Table 2), plus the deterministic address-activity
// oracle the probers sample.
//
// Everything is derived from hashes of (block seed, address, day), so a
// probe at any time is O(1) and the whole world replays bit-exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "net/ipv4.h"
#include "sim/events.h"
#include "util/date.h"

namespace diurnal::sim {

/// What kind of network occupies a block.  Categories map onto the
/// paper's observations in sections 2.4 and 3.5: change-sensitive blocks
/// are offices/universities/public-dynamic pools; NAT gateways and
/// server farms are responsive but hide human schedules; firewalled and
/// unused blocks never respond.
enum class BlockCategory : std::uint8_t {
  kUnused,        ///< routed, never responds
  kFirewalled,    ///< routed, probes dropped
  kServerFarm,    ///< always-on hosts, occasional restarts
  kNatGateway,    ///< 1..8 always-on routers, nothing else visible
  kIntermittent,  ///< devices with random multi-hour on/off sessions
  kMixed,         ///< servers plus a few workday machines (narrow swing)
  kOffice,        ///< work-week diurnal, empty nights/weekends
  kUniversity,    ///< like office, larger and with some 24/7 labs
  kHomeDynamic,   ///< public dynamic IPs, evening/weekend activity
};

std::string_view to_string(BlockCategory c) noexcept;

/// True for categories whose blocks show human diurnal schedules.
bool is_diurnal_category(BlockCategory c) noexcept;

/// A resolved event effect on one block: during [start, end) the
/// workday attendance of its human-operated devices drops to
/// `residual_attendance` (or, for home blocks under WFH, daytime
/// presence rises instead).
struct Suppression {
  util::SimTime start = 0;
  util::SimTime end = 0;
  double residual_attendance = 0.1;
  EventKind kind = EventKind::kHoliday;
};

/// A whole-block outage [start, end): no address responds.
struct OutageInterval {
  util::SimTime start = 0;
  util::SimTime end = 0;
};

/// A timezone-offset change (DST transition): from `at` onward the
/// block's UTC offset is `offset_hours` (absolute, not a delta).
struct TzShift {
  util::SimTime at = 0;
  std::int16_t offset_hours = 0;
};

/// Ground truth for one /24 block.
struct BlockProfile {
  net::BlockId id;
  BlockCategory category = BlockCategory::kUnused;
  std::uint16_t country = 0;       ///< index into geo::countries()
  std::int16_t tz_offset_hours = 0;  ///< standard-time (base) offset

  /// DST transitions within the horizon, sorted by `at` (empty: the base
  /// offset holds for all time — the default-registry case).
  std::vector<TzShift> tz_shifts;
  float lat = 0.0f;
  float lon = 0.0f;
  std::uint16_t eb_count = 0;   ///< |E(b)|: ever-active addresses (targets)
  std::uint16_t always_on = 0;  ///< first k target indices are 24/7 hosts
  std::uint64_t seed = 0;
  float base_attendance = 0.93f;  ///< workday presence probability

  /// Mirrors WorldConfig::stable_population: devices keep their epoch-0
  /// schedule and never go dormant (no 21-day population churn).
  bool stable_population = false;

  /// Fraction of the (non-always-on) E(b) targets currently in use.
  /// E(b) is "ever responded in three years", so much of it is stale:
  /// the paper's Figure 1a block has |E(b)| = 88 but only 8-18 active.
  float current_fraction = 1.0f;

  std::vector<Suppression> suppressions;  ///< resolved events, by start
  std::vector<OutageInterval> outages;

  /// ISP renumbering instant (<0: none): activity pauses briefly, then a
  /// different population appears (paired down/up change, section 2.6).
  util::SimTime renumber_at = -1;

  /// Permanent vacate instant (<0: none), e.g. the USC VPN moving to a
  /// new address block (Appendix B.2).
  util::SimTime vacate_at = -1;

  /// Occupancy window of the human population (<0: unbounded).  ISPs
  /// move users between blocks and facilities open/close, so some
  /// blocks are diurnal for only part of any long observation window —
  /// the source of the paper's duration effect (section 3.2.2) and of
  /// the change-sensitive churn in section 3.4.
  util::SimTime occupied_from = -1;
  util::SimTime occupied_until = -1;

  /// CGNAT absorption instant (<0: none).  From `cgnat_at` onward the
  /// carrier has moved this block's subscribers behind carrier-grade
  /// NAT: only the always-on gateway addresses still answer, and the
  /// block's diurnal signature disappears — the adoption-layer masking
  /// effect ("The Lockdown Effect" §CGNAT; paper section 3.5).
  util::SimTime cgnat_at = -1;

  geo::GridCell cell() const noexcept {
    return geo::GridCell::of(lat, lon);
  }
};

/// True when target index `addr` of `block` answers a probe at time t.
/// `addr` must be < block.eb_count; out-of-range targets never respond.
bool address_active(const BlockProfile& block, int addr,
                    util::SimTime t) noexcept;

/// Ground-truth count of active target addresses at time t (O(|E(b)|)).
int active_count(const BlockProfile& block, util::SimTime t) noexcept;

/// The block's work-from-home onset, if one of its suppressions is WFH.
std::optional<util::SimTime> wfh_start(const BlockProfile& block) noexcept;

}  // namespace diurnal::sim
