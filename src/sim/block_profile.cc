#include "sim/block_profile.h"

#include <algorithm>

#include "sim/schedule.h"
#include "util/rng.h"

namespace diurnal::sim {

using util::SimTime;

std::string_view to_string(BlockCategory c) noexcept {
  switch (c) {
    case BlockCategory::kUnused: return "unused";
    case BlockCategory::kFirewalled: return "firewalled";
    case BlockCategory::kServerFarm: return "server-farm";
    case BlockCategory::kNatGateway: return "nat-gateway";
    case BlockCategory::kIntermittent: return "intermittent";
    case BlockCategory::kMixed: return "mixed";
    case BlockCategory::kOffice: return "office";
    case BlockCategory::kUniversity: return "university";
    case BlockCategory::kHomeDynamic: return "home-dynamic";
  }
  return "?";
}

bool is_diurnal_category(BlockCategory c) noexcept {
  return c == BlockCategory::kOffice || c == BlockCategory::kUniversity ||
         c == BlockCategory::kHomeDynamic;
}

namespace {

using schedule::hash_chance;
using schedule::LocalClock;

// Active suppression (if any) at time t; WFH-kind beats shorter events
// only through the min() of residuals.
struct ActiveSuppression {
  double residual = 1.0;  // 1.0 = no suppression
  bool wfh = false;       // a WFH suppression is active
  bool any = false;
};

ActiveSuppression suppression_at(const BlockProfile& b, SimTime t) noexcept {
  ActiveSuppression s;
  for (const auto& sup : b.suppressions) {
    if (t >= sup.start && t < sup.end) {
      s.any = true;
      s.residual = std::min(s.residual, sup.residual_attendance);
      if (sup.kind == EventKind::kWorkFromHome) s.wfh = true;
    }
  }
  return s;
}

// Device-population churn: real E(b) populations turn over (DHCP
// reassignment, staff and hardware changes), so a device's schedule and
// even its presence only persist for a few weeks.  This is what makes
// diurnality decohere over long observation windows (the paper's
// duration effect in Tables 2 and 3).  Epochs are staggered per device
// so churn never produces a block-wide step.  The epoch math lives in
// sim/schedule.h, shared with ActivityCursor.
struct DeviceEpoch {
  std::int64_t epoch;
  bool dormant;
};

DeviceEpoch device_epoch(const BlockProfile& b, std::uint64_t seed, int addr,
                         std::int64_t local_day) noexcept {
  if (b.stable_population) return DeviceEpoch{0, false};
  const std::int64_t epoch =
      schedule::epoch_of_day(local_day, schedule::epoch_stagger(seed, addr));
  return DeviceEpoch{epoch, schedule::epoch_dormant(seed, addr, epoch)};
}

// Work-week machine: on during office hours of attended workdays.
bool workday_device_active(const BlockProfile& b, std::uint64_t seed, int addr,
                           const LocalClock& lc, double attendance_scale,
                           double weekend_attendance) noexcept {
  const auto ep = device_epoch(b, seed, addr, lc.day);
  if (ep.dormant) return false;
  const auto hours = schedule::work_hours(seed, ep.epoch, addr);
  if (lc.hour < hours.arrival || lc.hour >= hours.departure) return false;
  const double base = lc.workday
                          ? static_cast<double>(b.base_attendance) * attendance_scale
                          : weekend_attendance;
  return hash_chance(schedule::workday_presence_hash(seed, addr, lc.day), base);
}

// Evening/home device on a public dynamic IP.
bool home_device_active(const BlockProfile& b, std::uint64_t seed, int addr,
                        const LocalClock& lc, bool wfh_boost,
                        double presence_scale) noexcept {
  const auto ep = device_epoch(b, seed, addr, lc.day);
  if (ep.dormant) return false;
  const int evening_start = schedule::evening_start_hour(seed, ep.epoch, addr);
  const bool weekend = !lc.workday;
  bool in_window = lc.hour >= evening_start && lc.hour <= 23;
  if (weekend && lc.hour >= 9) in_window = true;
  double presence = 0.85;
  if (!in_window && wfh_boost && lc.hour >= 9 && lc.hour < evening_start) {
    // Lockdown: people (and their devices) are home all day.
    in_window = true;
    presence = 0.70;
  }
  if (!in_window) return false;
  return hash_chance(schedule::home_presence_hash(seed, addr, lc.day),
                     presence * presence_scale * b.base_attendance);
}

// Random multi-hour sessions (6-hour slots).
bool intermittent_active(std::uint64_t seed, int addr, SimTime t) noexcept {
  return hash_chance(
      schedule::intermittent_hash(seed, addr, schedule::intermittent_slot(t)),
      0.45);
}

// DHCP-churny address: multi-hour random sessions (8-hour slots).
bool churny_active(std::uint64_t seed, int addr, SimTime t) noexcept {
  return hash_chance(
      schedule::churny_hash(seed, addr, schedule::churny_slot(t)), 0.75);
}

// Always-on server with occasional restart windows.
bool server_active(std::uint64_t seed, int addr, const LocalClock& lc,
                   double restart_prob) noexcept {
  const std::uint64_t day_h = schedule::server_day_hash(seed, addr, lc.day);
  if (!hash_chance(day_h, restart_prob)) return true;
  const int restart_hour = static_cast<int>((day_h >> 32) % 24);
  return lc.hour != restart_hour;
}

}  // namespace

bool address_active(const BlockProfile& b, int addr, SimTime t) noexcept {
  if (addr < 0 || addr >= static_cast<int>(b.eb_count)) return false;
  if (b.category == BlockCategory::kUnused ||
      b.category == BlockCategory::kFirewalled) {
    return false;
  }
  for (const auto& o : b.outages) {
    if (t >= o.start && t < o.end) return false;
  }
  if (b.vacate_at >= 0 && t >= b.vacate_at) {
    // Vacated (e.g. VPN moved): only a couple of infrastructure hosts stay.
    return addr < std::min<int>(b.always_on, 2);
  }
  std::uint64_t seed = b.seed;
  if (b.renumber_at >= 0 && t >= b.renumber_at) {
    if (t < b.renumber_at + schedule::kRenumberGap) return false;  // gap
    // A different population appears after renumbering.
    seed = schedule::renumbered_seed(seed);
    addr = static_cast<int>(b.eb_count) - 1 - addr;
  }

  const LocalClock lc = schedule::local_clock(b, t);
  if (addr < static_cast<int>(b.always_on)) {
    return server_active(seed, addr, lc, 0.01);
  }

  // The human population only occupies the block within its occupancy
  // window (infrastructure stays up).  CGNAT absorption ends the
  // publicly visible population the same way: after cgnat_at only the
  // always-on gateway addresses (handled above) still answer.
  if ((b.occupied_from >= 0 && t < b.occupied_from) ||
      (b.occupied_until >= 0 && t >= b.occupied_until) ||
      (b.cgnat_at >= 0 && t >= b.cgnat_at)) {
    return false;
  }

  // Stale E(b) entries: targets that responded in the past but are no
  // longer in use never answer now.
  if (b.current_fraction < 1.0f) {
    const std::uint64_t h = schedule::stale_hash(seed, addr);
    if (static_cast<double>(h >> 11) * 0x1.0p-53 >
        static_cast<double>(b.current_fraction)) {
      return false;
    }
  }

  const ActiveSuppression sup = suppression_at(b, t);
  switch (b.category) {
    case BlockCategory::kServerFarm: {
      // Hosting farms mix stable servers with dynamically leased hosts;
      // the churny share gives many non-diurnal blocks the wide daily
      // swings Table 2 reports.
      const std::uint64_t kind_h = schedule::farm_kind_hash(seed, addr);
      if (hash_chance(kind_h, 0.55)) return churny_active(seed, addr, t);
      return server_active(seed, addr, lc, 0.04);
    }
    case BlockCategory::kNatGateway:
      return false;  // only the always-on routers respond
    case BlockCategory::kIntermittent:
      return intermittent_active(seed, addr, t);
    case BlockCategory::kMixed:
      return workday_device_active(b, seed, addr, lc,
                                   0.55 * (sup.any ? sup.residual : 1.0), 0.10);
    case BlockCategory::kOffice:
      return workday_device_active(b, seed, addr, lc,
                                   sup.any ? sup.residual : 1.0, 0.06);
    case BlockCategory::kUniversity:
      return workday_device_active(b, seed, addr, lc,
                                   sup.any ? sup.residual : 1.0, 0.15);
    case BlockCategory::kHomeDynamic: {
      // Holidays/travel reduce home presence; WFH extends it into the day.
      const double scale =
          (sup.any && !sup.wfh) ? std::max(sup.residual, 0.35) : 1.0;
      return home_device_active(b, seed, addr, lc, sup.wfh, scale);
    }
    case BlockCategory::kUnused:
    case BlockCategory::kFirewalled:
      return false;
  }
  return false;
}

int active_count(const BlockProfile& b, SimTime t) noexcept {
  int n = 0;
  for (int a = 0; a < static_cast<int>(b.eb_count); ++a) {
    if (address_active(b, a, t)) ++n;
  }
  return n;
}

std::optional<SimTime> wfh_start(const BlockProfile& b) noexcept {
  // Home blocks respond to WFH with *more* daytime activity (people are
  // home), not with the downward loss-of-diurnality signal the detector
  // matches, so they carry no downward ground truth.
  if (b.category == BlockCategory::kHomeDynamic) return std::nullopt;
  for (const auto& s : b.suppressions) {
    if (s.kind == EventKind::kWorkFromHome) return s.start;
  }
  return std::nullopt;
}

}  // namespace diurnal::sim
