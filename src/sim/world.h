// The synthetic Internet: a deterministic population of /24 blocks with
// ground-truth activity, locations, and a dated event calendar.
//
// This is the substitute for the paper's 5.2M-block Trinocular target
// list (see DESIGN.md): the probers sample it, the pipeline never sees
// anything but probe replies, and the validation benches score
// detections against its ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geo/geodb.h"
#include "sim/block_profile.h"
#include "sim/country_layers.h"
#include "sim/events.h"
#include "util/rng.h"
#include "util/timeseries.h"

namespace diurnal::sim {

struct WorldConfig {
  std::uint64_t seed = 1;

  /// Number of routed /24 blocks to generate (the paper has ~11.1M
  /// routed; benches typically scale 1:200 .. 1:1000).
  int num_blocks = 20'000;

  /// Fraction of routed blocks that ever respond (paper: 5.17M / 11.1M).
  double responsive_fraction = 0.465;

  /// Scales each country's diurnal-visible fraction into the probability
  /// that a responsive block is a diurnal category (offices/universities/
  /// public dynamic pools).  0.055 plus the mixed category's contribution
  /// lands near the paper's ~7.7% diurnal share of responsive blocks
  /// given the registry's country weights.
  double diurnal_scale = 0.055;

  /// Expected whole-block outages per block per 90 days.
  double outage_rate_per_90d = 0.06;

  /// Probability a block is renumbered once within the horizon.
  double renumber_probability = 0.015;

  /// Probability that a human-populated block's occupancy window opens
  /// (and, independently, closes) inside the horizon — the section 3.2.2
  /// duration effect.  Validation scenarios that need a world whose only
  /// activity changes are the planted calendar events set this to 0.
  double occupancy_churn = 0.08;

  /// Freeze the device population: no 21-day epoch churn (dormancy or
  /// schedule drift) — every device keeps its epoch-0 schedule for the
  /// whole horizon.  Validation negative controls set this so the only
  /// multi-day activity shifts in the world are planted events; real
  /// populations churn (the paper's duration effect), so it defaults
  /// off.
  bool stable_population = false;

  /// Simulated horizon (events and outages are materialized within it).
  util::SimTime horizon_start = 0;                              // 2019-10-01
  util::SimTime horizon_end = util::time_of(2020, 7, 1);

  /// Include the named case-study blocks (USC office and VPN, UAE, and a
  /// renumbering example) used by the figure benches.
  bool include_special_blocks = true;

  /// When set, every generated block is placed in this country
  /// (regional case studies build dense single-country worlds cheaply).
  std::optional<std::string> only_country;

  /// Event calendar; default_calendar() if empty (unless quiet_calendar).
  std::vector<Event> calendar;

  /// Keep an empty calendar empty instead of substituting
  /// default_calendar(): a world with no events whatsoever, so any
  /// detected change is by construction an artifact of the measurement
  /// (used by fault-injection tests to prove observer dropout is never
  /// misread as a WFH onset).
  bool quiet_calendar = false;

  /// Per-country layer overrides (DESIGN §12): adoption/CGNAT, network
  /// ops multipliers, DST policy, recurring holidays, secular drift.
  /// Empty (the default) resolves to exactly the registry scalars —
  /// the bitwise-equivalence contract for the golden digest.
  std::vector<CountryLayerOverride> country_layers;
};

/// Deterministically generated world.
class World {
 public:
  explicit World(WorldConfig config);

  const WorldConfig& config() const noexcept { return config_; }
  const std::vector<Event>& calendar() const noexcept { return config_.calendar; }

  const std::vector<BlockProfile>& blocks() const noexcept { return blocks_; }

  /// Lookup by id; nullptr if unknown.
  const BlockProfile* find(net::BlockId id) const;

  /// Geolocation database with the blocks' true locations.
  const geo::GeoDatabase& geodb() const noexcept { return geodb_; }

  /// Ground-truth active-address series for one block sampled every
  /// `step` seconds over [t0, t1).
  util::TimeSeries truth_series(const BlockProfile& block, util::SimTime t0,
                                util::SimTime t1, std::int64_t step) const;

  // Named case-study blocks (valid when include_special_blocks).
  net::BlockId usc_office_block() const noexcept { return usc_office_; }
  net::BlockId usc_vpn_block() const noexcept { return usc_vpn_; }
  net::BlockId uae_case_block() const noexcept { return uae_case_; }
  net::BlockId renumber_case_block() const noexcept { return renumber_case_; }

  /// Count of blocks per category (ground truth, for funnel sanity).
  std::unordered_map<BlockCategory, int> category_counts() const;

 private:
  void generate();

  WorldConfig config_;
  std::vector<BlockProfile> blocks_;
  std::unordered_map<net::BlockId, std::size_t> index_;
  geo::GeoDatabase geodb_;
  net::BlockId usc_office_{};
  net::BlockId usc_vpn_{};
  net::BlockId uae_case_{};
  net::BlockId renumber_case_{};
};

}  // namespace diurnal::sim
