#include "sim/country_layers.h"

#include <algorithm>
#include <cmath>

namespace diurnal::sim {

using geo::DstPolicy;
using util::Date;
using util::SimTime;

namespace {

// Day-of-month of the Nth Sunday (n = 1-based) of a month.
int nth_sunday(int year, int month, int n) {
  const int first_wd = util::weekday(Date{year, month, 1});  // 0 = Sunday
  const int first_sunday = 1 + (7 - first_wd) % 7;
  return first_sunday + 7 * (n - 1);
}

struct Transition {
  SimTime at;
  std::int16_t offset_hours;  // absolute offset from `at` onward
};

// All transitions of a policy for one calendar year, in UTC.
void year_transitions(DstPolicy policy, int base, int year,
                      std::vector<Transition>& out) {
  const auto base_s = static_cast<SimTime>(base) * 3600;
  const auto dst_s = static_cast<SimTime>(base + 1) * 3600;
  switch (policy) {
    case DstPolicy::kNone:
      break;
    case DstPolicy::kNorthern:
      // Spring forward: second Sunday of March, 02:00 standard time.
      out.push_back({util::time_of(year, 3, nth_sunday(year, 3, 2)) +
                         2 * util::kSecondsPerHour - base_s,
                     static_cast<std::int16_t>(base + 1)});
      // Fall back: first Sunday of November, 02:00 daylight time.
      out.push_back({util::time_of(year, 11, nth_sunday(year, 11, 1)) +
                         2 * util::kSecondsPerHour - dst_s,
                     static_cast<std::int16_t>(base)});
      break;
    case DstPolicy::kSouthern:
      // DST ends: first Sunday of April, 02:00 daylight time.
      out.push_back({util::time_of(year, 4, nth_sunday(year, 4, 1)) +
                         2 * util::kSecondsPerHour - dst_s,
                     static_cast<std::int16_t>(base)});
      // DST begins: first Sunday of October, 02:00 standard time.
      out.push_back({util::time_of(year, 10, nth_sunday(year, 10, 1)) +
                         2 * util::kSecondsPerHour - base_s,
                     static_cast<std::int16_t>(base + 1)});
      break;
  }
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

std::vector<TzShift> materialize_dst(DstPolicy policy, int base_offset_hours,
                                     SimTime horizon_start,
                                     SimTime horizon_end) {
  std::vector<TzShift> shifts;
  if (policy == DstPolicy::kNone) return shifts;

  // Generate candidates for every year the horizon can touch (plus one
  // on each side so the in-force offset at horizon_start is known even
  // when the most recent transition predates the horizon).
  const int y0 = util::date_of(horizon_start).year - 1;
  const int y1 = util::date_of(horizon_end).year + 1;
  std::vector<Transition> candidates;
  for (int y = y0; y <= y1; ++y) {
    year_transitions(policy, base_offset_hours, y, candidates);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Transition& a, const Transition& b) {
              return a.at < b.at;
            });

  std::int16_t in_force = static_cast<std::int16_t>(base_offset_hours);
  for (const Transition& tr : candidates) {
    if (tr.at <= horizon_start) {
      in_force = tr.offset_hours;
    } else if (tr.at < horizon_end) {
      shifts.push_back(TzShift{tr.at, tr.offset_hours});
    }
  }
  if (in_force != base_offset_hours) {
    shifts.insert(shifts.begin(), TzShift{horizon_start, in_force});
  }
  return shifts;
}

CountryLayerTable::CountryLayerTable(
    const std::vector<CountryLayerOverride>& overrides,
    double base_outage_rate_per_90d, double base_renumber_probability,
    SimTime horizon_start, SimTime horizon_end)
    : horizon_start_(horizon_start), horizon_end_(horizon_end) {
  const auto& registry = geo::countries();
  resolved_.reserve(registry.size());
  cumulative_.reserve(registry.size());

  const double horizon_years =
      static_cast<double>(horizon_end - horizon_start) /
      (365.0 * util::kSecondsPerDay);

  for (const auto& c : registry) {
    ResolvedCountry r;
    r.profile = &c;
    r.pick_weight = c.demographics.block_weight;
    r.diurnal_visible = c.adoption.diurnal_visible_fraction;
    double cgnat = c.adoption.cgnat_fraction;
    r.outage_rate_per_90d = base_outage_rate_per_90d;
    r.renumber_probability = base_renumber_probability;
    r.utc_offset_hours = c.time_rules.utc_offset_hours;
    r.dst = c.time_rules.dst;
    r.holidays = c.time_rules.holidays;
    r.adoption_trend_per_year = c.drift.adoption_trend_per_year;
    r.cgnat_trend_per_year = c.drift.cgnat_trend_per_year;

    double renumber_mult = c.network_ops.renumber_multiplier;
    double outage_mult = c.network_ops.outage_multiplier;

    // Apply overrides: "" first, then the country's own code, so a
    // per-code override wins over the all-countries one field-wise.
    for (const bool specific : {false, true}) {
      for (const auto& o : overrides) {
        if (specific ? (o.code != c.code) : !o.code.empty()) continue;
        if (o.diurnal_visible_fraction) {
          r.diurnal_visible = *o.diurnal_visible_fraction;
        }
        if (o.cgnat_fraction) cgnat = *o.cgnat_fraction;
        if (o.renumber_multiplier) renumber_mult = *o.renumber_multiplier;
        if (o.outage_multiplier) outage_mult = *o.outage_multiplier;
        if (o.dst) r.dst = *o.dst;
        r.holidays.insert(r.holidays.end(), o.holidays.begin(),
                          o.holidays.end());
        if (o.adoption_trend_per_year) {
          r.adoption_trend_per_year = *o.adoption_trend_per_year;
        }
        if (o.cgnat_trend_per_year) {
          r.cgnat_trend_per_year = *o.cgnat_trend_per_year;
        }
      }
    }

    // Drift: adoption is evaluated at the horizon midpoint; CGNAT at
    // start and end so per-block migration instants spread across the
    // horizon.  Guarded so the zero-drift default leaves the registry
    // doubles bit-untouched.
    if (r.adoption_trend_per_year != 0.0) {
      r.diurnal_visible = clamp01(
          r.diurnal_visible +
          r.adoption_trend_per_year * 0.5 * horizon_years);
    }
    r.cgnat_start = clamp01(cgnat);
    r.cgnat_end = r.cgnat_start;
    if (r.cgnat_trend_per_year != 0.0) {
      r.cgnat_end = std::max(
          r.cgnat_start,
          clamp01(cgnat + r.cgnat_trend_per_year * horizon_years));
    }

    // Multipliers of exactly 1.0 leave the base rate bit-identical
    // (IEEE x * 1.0 == x); guard anyway so the default path never
    // touches the doubles.
    if (outage_mult != 1.0) r.outage_rate_per_90d *= outage_mult;
    if (renumber_mult != 1.0) r.renumber_probability *= renumber_mult;

    if (r.dst != DstPolicy::kNone) {
      r.tz_shifts = materialize_dst(r.dst, r.utc_offset_hours, horizon_start,
                                    horizon_end);
    }

    total_weight_ += r.pick_weight;
    cumulative_.push_back(total_weight_);
    resolved_.push_back(std::move(r));
  }
}

std::size_t CountryLayerTable::pick(util::Xoshiro256& rng) const {
  const double r = rng.uniform(0.0, total_weight_);
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), r);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

std::vector<Event> CountryLayerTable::holiday_events() const {
  std::vector<Event> events;
  const int y0 = util::date_of(horizon_start_).year;
  const int y1 = util::date_of(horizon_end_).year;
  for (const auto& r : resolved_) {
    for (const auto& h : r.holidays) {
      for (int y = y0; y <= y1; ++y) {
        const SimTime start = util::time_of(y, h.month, h.day);
        const SimTime end = start + static_cast<SimTime>(h.duration_days) *
                                        util::kSecondsPerDay;
        if (end <= horizon_start_ || start >= horizon_end_) continue;
        Event e;
        e.kind = EventKind::kHoliday;
        e.name = h.name + "-" + std::to_string(y);
        e.scope.country_code = r.profile->code;
        e.start = start;
        e.end = end;
        e.adoption = h.adoption;
        e.residual_attendance = h.residual_attendance;
        events.push_back(std::move(e));
      }
    }
  }
  return events;
}

}  // namespace diurnal::sim
