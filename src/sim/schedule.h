// Shared device-schedule primitives for the activity oracle.
//
// Two call sites must derive the exact same hash chains: the stateless
// oracle `sim::address_active` (block_profile.cc) and its monotone-time
// cache `sim::ActivityCursor` (activity_cursor.{h,cc}).  Keeping every
// formula and hash label here is what keeps the two bit-identical; the
// equivalence is additionally enforced by the ActivityCursor property
// tests.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/block_profile.h"
#include "util/date.h"
#include "util/rng.h"

namespace diurnal::sim::schedule {

// 2019-10-01 (simulation epoch) was a Tuesday; with 0 = Sunday that is 2.
inline constexpr std::int64_t kEpochWeekday = 2;

struct LocalClock {
  std::int64_t day;  // local day index (can be negative near t = 0)
  int hour;          // 0..23 local
  int weekday;       // 0 = Sunday .. 6 = Saturday
  bool workday;      // Monday..Friday
};

/// UTC offset (seconds) in force at time t: the base offset until the
/// first tz_shift, then each shift's absolute offset from its `at`
/// onward.  The default registry leaves tz_shifts empty, so this is the
/// plain base offset with no extra work on the hot path.
inline std::int64_t tz_offset_seconds(const BlockProfile& b,
                                      util::SimTime t) noexcept {
  std::int64_t hours = b.tz_offset_hours;
  for (const TzShift& s : b.tz_shifts) {
    if (t < s.at) break;
    hours = s.offset_hours;
  }
  return hours * 3600;
}

/// Earliest tz transition strictly after t, or -1 if none remain.  The
/// ActivityCursor bounds its cached-window validity with this so a DST
/// change invalidates hoisted per-day state.
inline util::SimTime next_tz_shift_after(const BlockProfile& b,
                                         util::SimTime t) noexcept {
  for (const TzShift& s : b.tz_shifts) {
    if (s.at > t) return s.at;
  }
  return -1;
}

inline LocalClock local_clock(const BlockProfile& b,
                              util::SimTime t) noexcept {
  const util::SimTime local = t + tz_offset_seconds(b, t);
  std::int64_t day = local / util::kSecondsPerDay;
  std::int64_t rem = local % util::kSecondsPerDay;
  if (rem < 0) {
    rem += util::kSecondsPerDay;
    --day;
  }
  const int wd = static_cast<int>(((day + kEpochWeekday) % 7 + 7) % 7);
  return LocalClock{day, static_cast<int>(rem / 3600), wd, wd >= 1 && wd <= 5};
}

// Deterministic bernoulli from a 64-bit hash.
inline bool hash_chance(std::uint64_t h, double p) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

// Integer acceptance threshold T with hash_chance(h, p) == ((h >> 11) < T).
// (h >> 11) is a 53-bit integer, exactly representable as a double, and
// scaling by 2^53 only shifts the exponent, so the comparison boundary is
// preserved exactly.  Callers whose p is fixed across many draws hoist
// the threshold and replace a convert+multiply+compare with one integer
// compare per draw.
inline std::uint64_t chance_threshold(double p) noexcept {
  return p > 0.0 ? static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53)) : 0;
}

// ---------------------------------------------------------------------------
// Staged hashing.  Every per-address hash below is
// `derive_seed(seed, addr, b, c) = mix64(mix64(mix64(seed ^ addr) ^ b) ^ c)`,
// so the first round depends only on (seed, addr).  Callers that hash the
// same address repeatedly (the ActivityCursor, the prober's loss draws)
// cache `addr_stage` once and finish with `stage_hash`; the composition is
// operation-for-operation identical to derive_seed.
// ---------------------------------------------------------------------------

/// First derive_seed round of a (seed, addr, ...) chain.
inline std::uint64_t addr_stage(std::uint64_t seed, int addr) noexcept {
  return util::mix64(seed ^ static_cast<std::uint64_t>(addr));
}

/// Remaining two derive_seed rounds on a cached addr_stage value.
inline std::uint64_t stage_hash(std::uint64_t h1, std::uint64_t b,
                                std::uint64_t c) noexcept {
  return util::mix64(util::mix64(h1 ^ b) ^ c);
}

// ---------------------------------------------------------------------------
// Device-population churn epochs (see block_profile.cc for the rationale).
// ---------------------------------------------------------------------------

inline constexpr std::int64_t kEpochDays = 21;

/// Per-device epoch stagger hash; `stagger % kEpochDays` offsets the
/// device's epoch boundaries so churn never produces a block-wide step.
inline std::uint64_t epoch_stagger(std::uint64_t h1) noexcept {
  return stage_hash(h1, 0x0E77u, 0);
}
inline std::uint64_t epoch_stagger(std::uint64_t seed, int addr) noexcept {
  return epoch_stagger(addr_stage(seed, addr));
}

/// Epoch index of a local day given the device's stagger (floor division).
inline std::int64_t epoch_of_day(std::int64_t local_day,
                                 std::uint64_t stagger) noexcept {
  const std::int64_t shifted =
      local_day + static_cast<std::int64_t>(stagger % kEpochDays);
  std::int64_t epoch = shifted / kEpochDays;
  if (shifted < 0 && shifted % kEpochDays != 0) --epoch;
  return epoch;
}

/// Whether the device sits out this entire epoch (left the population).
inline bool epoch_dormant(std::uint64_t h1, std::int64_t epoch) noexcept {
  return hash_chance(stage_hash(h1, static_cast<std::uint64_t>(epoch), 0xC0DEu),
                     0.04);
}
inline bool epoch_dormant(std::uint64_t seed, int addr,
                          std::int64_t epoch) noexcept {
  return epoch_dormant(addr_stage(seed, addr), epoch);
}

// ---------------------------------------------------------------------------
// Per-epoch device schedules.
// ---------------------------------------------------------------------------

struct WorkHours {
  int arrival;    // 7..9
  int departure;  // 16..19
};

inline WorkHours work_hours(std::uint64_t seed, std::int64_t epoch,
                            int addr) noexcept {
  const std::uint64_t device = util::derive_seed(
      seed, 0x0FF1CEu ^ (static_cast<std::uint64_t>(epoch) << 20),
      static_cast<std::uint64_t>(addr));
  return WorkHours{7 + static_cast<int>(device % 3),
                   16 + static_cast<int>((device >> 8) % 4)};
}

inline int evening_start_hour(std::uint64_t seed, std::int64_t epoch,
                              int addr) noexcept {
  const std::uint64_t device = util::derive_seed(
      seed, 0x40ABCDu ^ (static_cast<std::uint64_t>(epoch) << 20),
      static_cast<std::uint64_t>(addr));
  return 16 + static_cast<int>(device % 3);
}

// ---------------------------------------------------------------------------
// Per-day and per-slot presence hashes.
// ---------------------------------------------------------------------------

inline std::uint64_t workday_presence_hash(std::uint64_t h1,
                                           std::int64_t day) noexcept {
  return stage_hash(h1, static_cast<std::uint64_t>(day), 0x0DA7u);
}
inline std::uint64_t workday_presence_hash(std::uint64_t seed, int addr,
                                           std::int64_t day) noexcept {
  return workday_presence_hash(addr_stage(seed, addr), day);
}

inline std::uint64_t home_presence_hash(std::uint64_t h1,
                                        std::int64_t day) noexcept {
  return stage_hash(h1, static_cast<std::uint64_t>(day), 0x803Eu);
}
inline std::uint64_t home_presence_hash(std::uint64_t seed, int addr,
                                        std::int64_t day) noexcept {
  return home_presence_hash(addr_stage(seed, addr), day);
}

/// Always-on server restart draw: if `hash_chance(h, restart_prob)` the
/// server restarts this day, during hour `(h >> 32) % 24`.
inline std::uint64_t server_day_hash(std::uint64_t h1,
                                     std::int64_t day) noexcept {
  return stage_hash(h1, static_cast<std::uint64_t>(day), 0x5E4Bu);
}
inline std::uint64_t server_day_hash(std::uint64_t seed, int addr,
                                     std::int64_t day) noexcept {
  return server_day_hash(addr_stage(seed, addr), day);
}

/// Random multi-hour sessions (6-hour slots), probability 0.45.
inline std::int64_t intermittent_slot(util::SimTime t) noexcept {
  return t / (6 * util::kSecondsPerHour);
}

inline std::uint64_t intermittent_hash(std::uint64_t h1,
                                       std::int64_t slot) noexcept {
  return stage_hash(h1, static_cast<std::uint64_t>(slot), 0x51D3u);
}
inline std::uint64_t intermittent_hash(std::uint64_t seed, int addr,
                                       std::int64_t slot) noexcept {
  return intermittent_hash(addr_stage(seed, addr), slot);
}

/// DHCP-churny address sessions (8-hour slots), probability 0.75.
inline std::int64_t churny_slot(util::SimTime t) noexcept {
  return t / (8 * util::kSecondsPerHour);
}

inline std::uint64_t churny_hash(std::uint64_t h1, std::int64_t slot) noexcept {
  return stage_hash(h1, static_cast<std::uint64_t>(slot), 0xD4C9u);
}
inline std::uint64_t churny_hash(std::uint64_t seed, int addr,
                                 std::int64_t slot) noexcept {
  return churny_hash(addr_stage(seed, addr), slot);
}

/// Stale-E(b) draw: an address no longer in use never answers.
inline std::uint64_t stale_hash(std::uint64_t h1) noexcept {
  return stage_hash(h1, 0x57A1Eu, 0);
}
inline std::uint64_t stale_hash(std::uint64_t seed, int addr) noexcept {
  return stale_hash(addr_stage(seed, addr));
}

/// Server-farm address kind: churny lease (0.55) vs stable server.
inline std::uint64_t farm_kind_hash(std::uint64_t h1) noexcept {
  return stage_hash(h1, 0xFA23u, 0);
}
inline std::uint64_t farm_kind_hash(std::uint64_t seed, int addr) noexcept {
  return farm_kind_hash(addr_stage(seed, addr));
}

/// Seed of the population that appears after ISP renumbering.
inline std::uint64_t renumbered_seed(std::uint64_t seed) noexcept {
  return util::mix64(seed ^ 0xC0FFEEULL);
}

/// Renumbering silence gap before the new population appears.
inline constexpr util::SimTime kRenumberGap = 4 * util::kSecondsPerHour;

}  // namespace diurnal::sim::schedule
