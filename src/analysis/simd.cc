#include "analysis/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace diurnal::analysis::simd {

namespace {

IsaLevel probe_cpu() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
#endif
  return IsaLevel::kGeneric;
}

IsaLevel env_level(IsaLevel detected) noexcept {
  const char* e = std::getenv("DIURNAL_SIMD");
  if (e != nullptr &&
      (std::strcmp(e, "generic") == 0 || std::strcmp(e, "scalar") == 0)) {
    return IsaLevel::kGeneric;
  }
  return detected;
}

std::atomic<int> g_forced{-1};
std::atomic<std::uint64_t> g_generic{0};
std::atomic<std::uint64_t> g_avx2{0};

}  // namespace

IsaLevel detected_level() noexcept {
  static const IsaLevel detected = probe_cpu();
  return detected;
}

IsaLevel active_level() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<IsaLevel>(forced);
  static const IsaLevel resolved = env_level(detected_level());
  return resolved;
}

void force_level(IsaLevel level) noexcept {
  if (static_cast<int>(level) > static_cast<int>(detected_level())) {
    level = detected_level();
  }
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_forced_level() noexcept {
  g_forced.store(-1, std::memory_order_relaxed);
}

const char* level_name(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kGeneric: return "generic";
    case IsaLevel::kAvx2: return "avx2";
  }
  return "?";
}

DispatchCounts dispatch_counts() noexcept {
  DispatchCounts c;
  c.generic = g_generic.load(std::memory_order_relaxed);
  c.avx2 = g_avx2.load(std::memory_order_relaxed);
  return c;
}

void reset_dispatch_counts() noexcept {
  g_generic.store(0, std::memory_order_relaxed);
  g_avx2.store(0, std::memory_order_relaxed);
}

void record_dispatch(IsaLevel level) noexcept {
  auto& counter = level == IsaLevel::kAvx2 ? g_avx2 : g_generic;
  counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace diurnal::analysis::simd
