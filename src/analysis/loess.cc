#include "analysis/loess.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace diurnal::analysis {

LoessWindow loess_window(int n, double x0, const LoessOptions& opt) noexcept {
  const int q = std::max(2, opt.span);
  const int window = std::min(q, n);

  // Choose the contiguous window of `window` points nearest x0.
  int lo = static_cast<int>(std::floor(x0)) - (window - 1) / 2;
  lo = std::clamp(lo, 0, n - window);
  // Slide to minimize the maximum distance to x0.
  while (lo > 0 && (x0 - (lo - 1)) < ((lo + window - 1) - x0)) --lo;
  while (lo + window < n && ((lo + window) - x0) < (x0 - lo)) ++lo;
  const int hi = lo + window - 1;

  double h = std::max(x0 - lo, static_cast<double>(hi) - x0);
  if (q > n) {
    // Cleveland's rule: widen the bandwidth when the span exceeds the data.
    h *= static_cast<double>(q) / static_cast<double>(n);
  }
  if (h <= 0.0) h = 1.0;
  return LoessWindow{lo, window, h};
}

double loess_at(std::span<const double> y, double x0, const LoessOptions& opt,
                std::span<const double> robustness) {
  const int n = static_cast<int>(y.size());
  if (n == 0) return 0.0;
  if (n == 1) return y[0];
  const LoessWindow win = loess_window(n, x0, opt);
  const int lo = win.lo;
  const int window = win.window;
  const int hi = lo + window - 1;
  const double h = win.h;

  double sw = 0.0, swx = 0.0, swy = 0.0, swxx = 0.0, swxy = 0.0;
  for (int i = lo; i <= hi; ++i) {
    double w = tricube_weight((static_cast<double>(i) - x0) / h);
    if (!robustness.empty()) w *= robustness[static_cast<std::size_t>(i)];
    if (w <= 0.0) continue;
    const double xi = static_cast<double>(i);
    sw += w;
    swx += w * xi;
    swy += w * y[static_cast<std::size_t>(i)];
    swxx += w * xi * xi;
    swxy += w * xi * y[static_cast<std::size_t>(i)];
  }
  if (sw <= 0.0) {
    // All weights vanished (e.g. robustness zeroed the window): fall back
    // to the unweighted window mean.
    double s = 0.0;
    for (int i = lo; i <= hi; ++i) s += y[static_cast<std::size_t>(i)];
    return s / static_cast<double>(window);
  }
  const double mean_y = swy / sw;
  if (opt.degree <= 0) return mean_y;
  const double mean_x = swx / sw;
  const double var_x = swxx / sw - mean_x * mean_x;
  if (var_x <= 1e-12) return mean_y;
  const double cov_xy = swxy / sw - mean_x * mean_y;
  const double slope = cov_xy / var_x;
  return mean_y + slope * (x0 - mean_x);
}

namespace {

// Evaluates loess at positions first..last (inclusive, integer steps of
// `jump`) and linearly interpolates the gaps; indexes into `out` are
// offset by `out_offset` (position p lands at out[p + out_offset]).
void smooth_range(std::span<const double> y, const LoessOptions& opt,
                  std::span<const double> robustness, int first, int last,
                  std::span<double> out, int out_offset) {
  const int jump = std::max(1, opt.jump);
  int prev_pos = first;
  double prev_val = loess_at(y, first, opt, robustness);
  out[static_cast<std::size_t>(first + out_offset)] = prev_val;
  for (int p = first + jump; p <= last + jump - 1; p += jump) {
    const int pos = std::min(p, last);
    const double val = loess_at(y, pos, opt, robustness);
    out[static_cast<std::size_t>(pos + out_offset)] = val;
    for (int q = prev_pos + 1; q < pos; ++q) {
      const double frac = static_cast<double>(q - prev_pos) /
                          static_cast<double>(pos - prev_pos);
      out[static_cast<std::size_t>(q + out_offset)] =
          prev_val + frac * (val - prev_val);
    }
    prev_pos = pos;
    prev_val = val;
    if (pos == last) break;
  }
  if (prev_pos != last) {
    // Single-point range or jump landed exactly; ensure last is set.
    out[static_cast<std::size_t>(last + out_offset)] =
        loess_at(y, last, opt, robustness);
  }
}

}  // namespace

std::vector<double> loess_smooth(std::span<const double> y,
                                 const LoessOptions& opt,
                                 std::span<const double> robustness) {
  std::vector<double> out(y.size(), 0.0);
  loess_smooth(y, opt, robustness, out);
  return out;
}

void loess_smooth(std::span<const double> y, const LoessOptions& opt,
                  std::span<const double> robustness, std::span<double> out) {
  const int n = static_cast<int>(y.size());
  if (n == 0) return;
  smooth_range(y, opt, robustness, 0, n - 1, out, 0);
}

std::vector<double> loess_smooth_extended(std::span<const double> y,
                                          const LoessOptions& opt,
                                          std::span<const double> robustness) {
  std::vector<double> out(y.size() + 2, 0.0);
  loess_smooth_extended(y, opt, robustness, out);
  return out;
}

void loess_smooth_extended(std::span<const double> y, const LoessOptions& opt,
                           std::span<const double> robustness,
                           std::span<double> out) {
  const int n = static_cast<int>(y.size());
  if (n == 0) return;
  out[0] = loess_at(y, -1.0, opt, robustness);
  smooth_range(y, opt, robustness, 0, n - 1, out, 1);
  out[static_cast<std::size_t>(n) + 1] =
      loess_at(y, static_cast<double>(n), opt, robustness);
}

}  // namespace diurnal::analysis
