// The "naive" seasonality model the paper compared against STL
// (section 2.5): classical additive decomposition — a centered moving
// average for the trend, per-phase means of the detrended series for the
// seasonal component.  Kept as the ablation baseline; STL won because
// this model is not robust to outliers.
#pragma once

#include <span>
#include <vector>

#include "analysis/workspace.h"
#include "util/timeseries.h"

namespace diurnal::analysis {

struct NaiveDecomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> residual;
};

/// Classical additive decomposition with the given period.
/// The centered-moving-average trend is extended to the series edges by
/// holding the first/last computable value.  y.size() must be >= 2*period.
NaiveDecomposition naive_decompose(std::span<const double> y, int period);

/// Span-based decomposition into caller storage; the per-phase
/// accumulators are leased from `ws`.  trend/seasonal/residual must
/// each hold y.size() elements and must not alias y or each other.
/// Bit-identical to the vector overload.
void naive_decompose(std::span<const double> y, int period, Workspace& ws,
                     std::span<double> trend, std::span<double> seasonal,
                     std::span<double> residual);

/// TimeSeries convenience overload.
struct NaiveSeries {
  util::TimeSeries trend;
  util::TimeSeries seasonal;
  util::TimeSeries residual;
};
NaiveSeries naive_decompose(const util::TimeSeries& series, int period);

}  // namespace diurnal::analysis
