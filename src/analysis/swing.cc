#include "analysis/swing.h"

#include <algorithm>

namespace diurnal::analysis {

SwingResult classify_swing(const util::TimeSeries& series,
                           const SwingOptions& opt) {
  return classify_swing(series.daily_stats(), opt);
}

SwingResult classify_swing(const std::vector<util::DayStats>& days,
                           const SwingOptions& opt) {
  SwingResult r;
  if (days.empty()) return r;
  r.total_days = static_cast<int>(days.size());

  // Mark wide days on a dense day-index axis so "consecutive" windows are
  // calendar windows even if some days lack samples.
  const std::int64_t first = days.front().day;
  const std::int64_t last = days.back().day;
  const std::size_t span = static_cast<std::size_t>(last - first + 1);
  std::vector<char> wide_day(span, 0);
  for (const auto& d : days) {
    r.max_daily_swing = std::max(r.max_daily_swing, d.swing());
    if (d.swing() >= opt.min_swing) {
      wide_day[static_cast<std::size_t>(d.day - first)] = 1;
      ++r.wide_days;
    }
  }

  const std::size_t w = static_cast<std::size_t>(std::max(opt.window_days, 1));
  int in_window = 0;
  for (std::size_t i = 0; i < span; ++i) {
    in_window += wide_day[i];
    if (i >= w) in_window -= wide_day[i - w];
    r.best_window_wide = std::max(r.best_window_wide, in_window);
  }
  r.wide = r.best_window_wide >= opt.min_wide_days;
  return r;
}

SwingResult classify_swing(std::span<const double> values, util::SimTime start,
                           std::int64_t step, const SwingOptions& opt,
                           Workspace& ws) {
  SwingResult r;
  const std::size_t n = values.size();
  if (n == 0) return r;

  // Same day-run decomposition as TimeSeries::daily_stats(), computed
  // inline: sample i covers time start + i*step, runs are contiguous
  // because time is monotone.  The dense wide-day axis lives in a lease
  // holding exact 0/1 values.
  const std::int64_t first =
      util::day_index(start);
  const std::int64_t last = util::day_index(
      start + static_cast<util::SimTime>(n - 1) * step);
  const std::size_t span = static_cast<std::size_t>(last - first + 1);
  auto wide_day = ws.acquire_zero(span);

  std::size_t i = 0;
  while (i < n) {
    const std::int64_t day =
        util::day_index(start + static_cast<util::SimTime>(i) * step);
    double mn = values[i];
    double mx = values[i];
    while (i < n &&
           util::day_index(start + static_cast<util::SimTime>(i) * step) == day) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
      ++i;
    }
    ++r.total_days;
    const double swing = mx - mn;
    r.max_daily_swing = std::max(r.max_daily_swing, swing);
    if (swing >= opt.min_swing) {
      wide_day[static_cast<std::size_t>(day - first)] = 1.0;
      ++r.wide_days;
    }
  }

  const std::size_t w = static_cast<std::size_t>(std::max(opt.window_days, 1));
  int in_window = 0;
  for (std::size_t k = 0; k < span; ++k) {
    in_window += static_cast<int>(wide_day[k]);
    if (k >= w) in_window -= static_cast<int>(wide_day[k - w]);
    r.best_window_wide = std::max(r.best_window_wide, in_window);
  }
  r.wide = r.best_window_wide >= opt.min_wide_days;
  return r;
}

}  // namespace diurnal::analysis
