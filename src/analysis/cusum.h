// Two-sided CUSUM change-point detection (paper section 2.6).
//
// Follows the `detecta` detect_cusum semantics (Duarte 2020; Gustafsson
// 2000): accumulate successive differences against a drift term; alarm
// when either the positive or negative accumulator exceeds the
// threshold; the change start is the last time that accumulator was
// zero.  The paper applies it to the z-score-normalized STL trend with
// threshold 1 and drift 0.001.
#pragma once

#include <span>
#include <vector>

#include "util/state_io.h"
#include "util/timeseries.h"

namespace diurnal::analysis {

enum class ChangeDirection { kUp, kDown };

/// One detected change.
struct ChangePoint {
  std::size_t start = 0;  ///< index where the accumulator left zero
  std::size_t alarm = 0;  ///< index where the threshold was crossed
  std::size_t end = 0;    ///< index where the excursion stopped growing
  ChangeDirection direction = ChangeDirection::kDown;
  double amplitude = 0.0;  ///< x[end] - x[start]
};

struct CusumOptions {
  double threshold = 1.0;
  double drift = 0.001;
};

struct CusumResult {
  std::vector<ChangePoint> changes;
  /// Cumulative positive/negative sums per sample (for plotting, as in
  /// the paper's Figure 1c lower panel).
  std::vector<double> g_pos;
  std::vector<double> g_neg;
};

/// Resumable two-sided CUSUM: the batch scan carved into begin / push /
/// finish so the streaming engine can drive detection as samples arrive
/// and still confirm the byte-identical change points.  The batch scan
/// looks ahead after an alarm (the excursion's end is the argmax of the
/// continued accumulation, confirmed when it decays or the series
/// ends); push() therefore advances only as far as the data decides —
/// an excursion still growing at the end of the pushed prefix stays
/// open until more samples arrive or finish() declares end-of-stream.
/// confirmed() is a stable prefix: a change, once reported, is final.
/// cusum_detect() below is one full pass of this machine.
class OnlineCusum {
 public:
  /// Re-initializes, reusing internal buffers.
  void begin(const CusumOptions& opt = {});

  /// Feeds the next sample and advances the scan as far as decidable.
  void push(double value);

  /// Changes confirmed so far — batch-identical indices into the pushed
  /// sequence, in confirmation order.
  const std::vector<ChangePoint>& confirmed() const noexcept {
    return changes_;
  }

  /// Samples pushed so far.
  std::size_t size() const noexcept { return x_.size(); }

  /// End of stream without relinquishing buffers: resolves any open
  /// excursion exactly as the batch scan does at the series end.  After
  /// this, confirmed()/g_pos()/g_neg() hold the complete batch result;
  /// the views stay valid until the next begin().  Use instead of
  /// finish() when the machine is reused block after block — begin()
  /// then recycles every internal buffer, so a warm machine scans
  /// without allocating.
  void end_of_stream() { drive(true); }

  /// One full batch pass reusing this machine's buffers: begin + push
  /// all + end_of_stream.  Equivalent to cusum_detect(x, opt) with the
  /// result read through confirmed()/g_pos()/g_neg().
  void scan(std::span<const double> x, const CusumOptions& opt = {});

  /// Accumulator trajectories over the pushed prefix (batch-identical
  /// after end_of_stream; the scan's undecided tail is zero-filled).
  std::span<const double> g_pos() const noexcept { return g_pos_; }
  std::span<const double> g_neg() const noexcept { return g_neg_; }

  /// End of stream: resolves any open excursion exactly as the batch
  /// scan does at the series end, and moves out the full result.  The
  /// state is spent afterwards; call begin() to reuse it (moved-out
  /// buffers are re-allocated — prefer end_of_stream() in reuse loops).
  CusumResult finish();

  /// Serializes the complete machine — options, pushed samples,
  /// accumulator trajectories, confirmed changes and any open
  /// excursion.  restore() needs no begin(): it overwrites everything,
  /// after which push()/end_of_stream() continue bitwise-identically to
  /// the saved scan.
  void save(util::StateWriter& w) const;
  void restore(util::StateReader& r);

 private:
  void drive(bool at_end);
  void confirm();

  CusumOptions opt_{};
  std::vector<double> x_;
  std::vector<double> g_pos_;
  std::vector<double> g_neg_;
  std::vector<ChangePoint> changes_;
  std::size_t i_ = 1;  ///< next index the scan will process
  double gp_ = 0.0, gn_ = 0.0;
  std::size_t tap_ = 0, tan_ = 0;  ///< last zero-crossings
  // Open-excursion state (valid while excursion_).
  bool excursion_ = false;
  bool up_ = false;
  double g_ = 0.0, peak_ = 0.0;
  std::size_t start_ = 0, alarm_ = 0, end_ = 0;
  std::size_t j_ = 0;  ///< last index consumed by the excursion scan
};

/// Runs two-sided CUSUM over x.  One full pass of the OnlineCusum
/// machine.
CusumResult cusum_detect(std::span<const double> x, const CusumOptions& opt = {});

/// A change annotated with calendar data, produced from a TimeSeries.
struct DatedChange {
  ChangePoint point;
  util::SimTime start_time = 0;
  util::SimTime alarm_time = 0;
  util::SimTime end_time = 0;
};

/// Runs CUSUM on a series and maps indices to times.
std::vector<DatedChange> cusum_detect_dated(const util::TimeSeries& series,
                                            const CusumOptions& opt = {});

}  // namespace diurnal::analysis
