// Two-sided CUSUM change-point detection (paper section 2.6).
//
// Follows the `detecta` detect_cusum semantics (Duarte 2020; Gustafsson
// 2000): accumulate successive differences against a drift term; alarm
// when either the positive or negative accumulator exceeds the
// threshold; the change start is the last time that accumulator was
// zero.  The paper applies it to the z-score-normalized STL trend with
// threshold 1 and drift 0.001.
#pragma once

#include <span>
#include <vector>

#include "util/timeseries.h"

namespace diurnal::analysis {

enum class ChangeDirection { kUp, kDown };

/// One detected change.
struct ChangePoint {
  std::size_t start = 0;  ///< index where the accumulator left zero
  std::size_t alarm = 0;  ///< index where the threshold was crossed
  std::size_t end = 0;    ///< index where the excursion stopped growing
  ChangeDirection direction = ChangeDirection::kDown;
  double amplitude = 0.0;  ///< x[end] - x[start]
};

struct CusumOptions {
  double threshold = 1.0;
  double drift = 0.001;
};

struct CusumResult {
  std::vector<ChangePoint> changes;
  /// Cumulative positive/negative sums per sample (for plotting, as in
  /// the paper's Figure 1c lower panel).
  std::vector<double> g_pos;
  std::vector<double> g_neg;
};

/// Runs two-sided CUSUM over x.
CusumResult cusum_detect(std::span<const double> x, const CusumOptions& opt = {});

/// A change annotated with calendar data, produced from a TimeSeries.
struct DatedChange {
  ChangePoint point;
  util::SimTime start_time = 0;
  util::SimTime alarm_time = 0;
  util::SimTime end_time = 0;
};

/// Runs CUSUM on a series and maps indices to times.
std::vector<DatedChange> cusum_detect_dated(const util::TimeSeries& series,
                                            const CusumOptions& opt = {});

}  // namespace diurnal::analysis
