// LOESS: locally weighted regression smoothing (Cleveland 1979), the
// building block of STL (paper section 2.5).
//
// The smoother operates on equally spaced series (x = 0..n-1), supports
// degree 0 (local mean) and degree 1 (local linear), tricube neighborhood
// weights, optional robustness weights, evaluation at fractional and
// out-of-range positions (needed for STL's cycle-subseries extension),
// and a `jump` parameter that evaluates every jump-th point and linearly
// interpolates in between (the standard STL speedup).
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace diurnal::analysis {

struct LoessOptions {
  int span = 7;    ///< q: number of neighborhood points (>= 2)
  int degree = 1;  ///< 0 = local constant, 1 = local linear
  int jump = 1;    ///< evaluate every jump-th point, interpolate between
};

/// The neighborhood loess_at() regresses over at x0: the contiguous
/// window [lo, lo + window) nearest x0 and the tricube bandwidth h
/// (Cleveland-widened when the span exceeds the data).  Exposed so the
/// batched SoA kernels (analysis/batch.h) share the exact window logic
/// with the scalar path — both must pick identical points and weights
/// for the outputs to stay bit-identical.
struct LoessWindow {
  int lo = 0;
  int window = 0;
  double h = 1.0;
};

/// Computes the window for a series of length n (n >= 2).
LoessWindow loess_window(int n, double x0, const LoessOptions& opt) noexcept;

/// Tricube neighborhood weight (1 - |u|^3)^3, zero for |u| >= 1.
/// Shared by the scalar and batched paths.
inline double tricube_weight(double u) noexcept {
  u = std::abs(u);
  if (u >= 1.0) return 0.0;
  const double t = 1.0 - u * u * u;
  return t * t * t;
}

/// Smoothed estimate of y at position x0 (x-coordinates are the indices
/// 0..n-1; x0 may be fractional or slightly out of range).
/// `robustness` is empty or one weight per point.
double loess_at(std::span<const double> y, double x0, const LoessOptions& opt,
                std::span<const double> robustness = {});

/// Smooths the whole series, returning one value per input point.
std::vector<double> loess_smooth(std::span<const double> y,
                                 const LoessOptions& opt,
                                 std::span<const double> robustness = {});

/// Same into caller storage; out.size() must equal y.size().  `out`
/// must not alias `y` or `robustness` (the smoother re-reads both
/// while writing out).
void loess_smooth(std::span<const double> y, const LoessOptions& opt,
                  std::span<const double> robustness, std::span<double> out);

/// Smooths and also extrapolates one position before the first point and
/// one after the last (returns n + 2 values for positions -1 .. n).
/// Used by STL's cycle-subseries step.
std::vector<double> loess_smooth_extended(std::span<const double> y,
                                          const LoessOptions& opt,
                                          std::span<const double> robustness = {});

/// Same into caller storage; out.size() must equal y.size() + 2, with
/// the no-alias rule above.
void loess_smooth_extended(std::span<const double> y, const LoessOptions& opt,
                           std::span<const double> robustness,
                           std::span<double> out);

}  // namespace diurnal::analysis
