#include "analysis/block_analyzer.h"

#include <algorithm>
#include <cmath>

#include "analysis/stats.h"

namespace diurnal::analysis {

DiurnalResult BlockAnalyzer::diurnal(std::span<const double> counts,
                                     double samples_per_day,
                                     const DiurnalOptions& opt) {
  return test_diurnal(counts, samples_per_day, opt, ws_);
}

SwingResult BlockAnalyzer::swing(std::span<const double> counts,
                                 util::SimTime start, std::int64_t step,
                                 const SwingOptions& opt) {
  return classify_swing(counts, start, step, opt, ws_);
}

BlockAnalyzer::Decomposition BlockAnalyzer::decompose_stl(
    std::span<const double> y, const StlOptions& opt) {
  const std::size_t n = y.size();
  trend_.resize(n);
  seasonal_.resize(n);
  residual_.resize(n);
  stl_decompose(y, opt, ws_, trend_, seasonal_, residual_);
  return Decomposition{trend_, seasonal_, residual_};
}

BlockAnalyzer::Decomposition BlockAnalyzer::decompose_naive(
    std::span<const double> y, int period) {
  const std::size_t n = y.size();
  trend_.resize(n);
  seasonal_.resize(n);
  residual_.resize(n);
  naive_decompose(y, period, ws_, trend_, seasonal_, residual_);
  return Decomposition{trend_, seasonal_, residual_};
}

std::span<const double> BlockAnalyzer::zscore(std::span<const double> x) {
  // Mirrors util::TimeSeries::zscore() operation for operation,
  // including the constant-series guard (see that implementation for
  // the rationale); the z series feeding CUSUM must match it bit for
  // bit.
  const double m = mean(x);
  const double sd = stddev(x);
  z_.resize(x.size());
  if (sd <= 1e-9 * std::max(1.0, std::abs(m))) {
    std::fill(z_.begin(), z_.end(), 0.0);
    return z_;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    z_[i] = (x[i] - m) / sd;
  }
  return z_;
}

BlockAnalyzer::CusumView BlockAnalyzer::cusum(std::span<const double> x,
                                              const CusumOptions& opt) {
  cusum_.scan(x, opt);
  return CusumView{cusum_.confirmed(), cusum_.g_pos(), cusum_.g_neg()};
}

}  // namespace diurnal::analysis
