#include "analysis/stl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/loess.h"
#include "analysis/stats.h"

namespace diurnal::analysis {

namespace {

int next_odd(int v) noexcept { return (v % 2 == 0) ? v + 1 : v; }

// Moving average of window m; output size = in.size() - m + 1.
std::vector<double> moving_average(std::span<const double> in, int m) {
  std::vector<double> out;
  if (static_cast<int>(in.size()) < m || m <= 0) return out;
  out.resize(in.size() - static_cast<std::size_t>(m) + 1);
  double sum = 0.0;
  for (int i = 0; i < m; ++i) sum += in[static_cast<std::size_t>(i)];
  out[0] = sum / m;
  for (std::size_t i = 1; i < out.size(); ++i) {
    sum += in[i + static_cast<std::size_t>(m) - 1] - in[i - 1];
    out[i] = sum / m;
  }
  return out;
}

}  // namespace

int default_trend_span(int period, int seasonal_span) noexcept {
  const double denom = 1.0 - 1.5 / static_cast<double>(std::max(seasonal_span, 3));
  const int v = static_cast<int>(std::ceil(1.5 * period / denom));
  return next_odd(std::max(v, 3));
}

StlDecomposition stl_decompose(std::span<const double> y, const StlOptions& opt) {
  const int n = static_cast<int>(y.size());
  const int p = opt.period;
  if (p < 2) throw std::invalid_argument("stl_decompose: period must be >= 2");
  if (n < 2 * p) {
    throw std::invalid_argument("stl_decompose: need at least two periods of data");
  }

  const int n_s = next_odd(std::max(opt.seasonal_span, 7));
  const int n_t = opt.trend_span > 0 ? next_odd(opt.trend_span)
                                     : default_trend_span(p, n_s);
  const int n_l = opt.lowpass_span > 0 ? next_odd(opt.lowpass_span) : next_odd(p);

  auto default_jump = [](int explicit_jump, int span) {
    if (explicit_jump > 0) return explicit_jump;
    return std::max(1, span / 10);
  };
  const LoessOptions seasonal_loess{n_s, opt.seasonal_degree,
                                    default_jump(opt.seasonal_jump, n_s)};
  const LoessOptions trend_loess{n_t, opt.trend_degree,
                                 default_jump(opt.trend_jump, n_t)};
  const LoessOptions lowpass_loess{n_l, opt.lowpass_degree,
                                   default_jump(opt.lowpass_jump, n_l)};

  StlDecomposition out;
  out.trend.assign(static_cast<std::size_t>(n), 0.0);
  out.seasonal.assign(static_cast<std::size_t>(n), 0.0);
  out.residual.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<double> rho;  // robustness weights (empty until outer pass 2)
  std::vector<double> detrended(static_cast<std::size_t>(n));
  std::vector<double> extended;  // cycle-subseries output, length n + 2p
  std::vector<double> deseason(static_cast<std::size_t>(n));
  std::vector<double> sub, sub_rho, sub_smooth;

  const int outer_passes = std::max(opt.outer_iterations, 0) + 1;
  for (int outer = 0; outer < outer_passes; ++outer) {
    for (int inner = 0; inner < std::max(opt.inner_iterations, 1); ++inner) {
      // Step 1: detrend.
      for (int i = 0; i < n; ++i) {
        detrended[static_cast<std::size_t>(i)] =
            y[static_cast<std::size_t>(i)] - out.trend[static_cast<std::size_t>(i)];
      }
      // Step 2: cycle-subseries smoothing, extended one period each way.
      extended.assign(static_cast<std::size_t>(n + 2 * p), 0.0);
      for (int phase = 0; phase < p; ++phase) {
        sub.clear();
        sub_rho.clear();
        for (int i = phase; i < n; i += p) {
          sub.push_back(detrended[static_cast<std::size_t>(i)]);
          if (!rho.empty()) sub_rho.push_back(rho[static_cast<std::size_t>(i)]);
        }
        if (sub.empty()) continue;
        sub_smooth = loess_smooth_extended(
            sub, seasonal_loess,
            sub_rho.empty() ? std::span<const double>{}
                            : std::span<const double>(sub_rho));
        // sub_smooth[k] corresponds to subseries position k-1, i.e. full
        // series index phase + (k-1)*p; with the +p shift of `extended`
        // that lands at extended[phase + k*p].
        for (std::size_t k = 0; k < sub_smooth.size(); ++k) {
          const std::size_t idx = static_cast<std::size_t>(phase) + k * static_cast<std::size_t>(p);
          if (idx < extended.size()) extended[idx] = sub_smooth[k];
        }
      }
      // Step 3: low-pass filter of the extended seasonal: MA(p), MA(p),
      // MA(3), then LOESS(n_l).  Output length: n.
      auto ma1 = moving_average(extended, p);
      auto ma2 = moving_average(ma1, p);
      auto ma3 = moving_average(ma2, 3);
      auto lowpass = loess_smooth(ma3, lowpass_loess);
      // Step 4: seasonal = extended(middle) - lowpass.
      for (int i = 0; i < n; ++i) {
        const double c = extended[static_cast<std::size_t>(i + p)];
        const double l = (static_cast<std::size_t>(i) < lowpass.size())
                             ? lowpass[static_cast<std::size_t>(i)]
                             : 0.0;
        out.seasonal[static_cast<std::size_t>(i)] = c - l;
      }
      // Step 5: deseasonalize.
      for (int i = 0; i < n; ++i) {
        deseason[static_cast<std::size_t>(i)] =
            y[static_cast<std::size_t>(i)] - out.seasonal[static_cast<std::size_t>(i)];
      }
      // Step 6: trend smoothing.
      out.trend = loess_smooth(deseason, trend_loess,
                               rho.empty() ? std::span<const double>{}
                                           : std::span<const double>(rho));
    }
    // Residuals and (for all but the last pass) robustness weights.
    for (int i = 0; i < n; ++i) {
      out.residual[static_cast<std::size_t>(i)] =
          y[static_cast<std::size_t>(i)] - out.trend[static_cast<std::size_t>(i)] -
          out.seasonal[static_cast<std::size_t>(i)];
    }
    if (outer + 1 < outer_passes) {
      std::vector<double> abs_r(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        abs_r[static_cast<std::size_t>(i)] =
            std::abs(out.residual[static_cast<std::size_t>(i)]);
      }
      const double h = 6.0 * median(abs_r);
      rho.assign(static_cast<std::size_t>(n), 1.0);
      if (h > 0.0) {
        for (int i = 0; i < n; ++i) {
          const double u = abs_r[static_cast<std::size_t>(i)] / h;
          if (u >= 1.0) {
            rho[static_cast<std::size_t>(i)] = 0.0;
          } else {
            const double t = 1.0 - u * u;
            rho[static_cast<std::size_t>(i)] = t * t;  // bisquare
          }
        }
      }
    }
  }
  out.robustness = std::move(rho);
  return out;
}

StlSeries stl_decompose(const util::TimeSeries& series, const StlOptions& opt) {
  const auto d = stl_decompose(series.span(), opt);
  return StlSeries{
      util::TimeSeries(series.start(), series.step(), d.trend),
      util::TimeSeries(series.start(), series.step(), d.seasonal),
      util::TimeSeries(series.start(), series.step(), d.residual),
  };
}

}  // namespace diurnal::analysis
