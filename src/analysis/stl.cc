#include "analysis/stl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/loess.h"
#include "analysis/stats.h"

namespace diurnal::analysis {

namespace {

int next_odd(int v) noexcept { return (v % 2 == 0) ? v + 1 : v; }

// Moving average of window m; writes in.size() - m + 1 values into out.
void moving_average(std::span<const double> in, int m, std::span<double> out) {
  if (static_cast<int>(in.size()) < m || m <= 0) return;
  double sum = 0.0;
  for (int i = 0; i < m; ++i) sum += in[static_cast<std::size_t>(i)];
  out[0] = sum / m;
  const std::size_t count = in.size() - static_cast<std::size_t>(m) + 1;
  for (std::size_t i = 1; i < count; ++i) {
    sum += in[i + static_cast<std::size_t>(m) - 1] - in[i - 1];
    out[i] = sum / m;
  }
}

}  // namespace

int default_trend_span(int period, int seasonal_span) noexcept {
  const double denom = 1.0 - 1.5 / static_cast<double>(std::max(seasonal_span, 3));
  const int v = static_cast<int>(std::ceil(1.5 * period / denom));
  return next_odd(std::max(v, 3));
}

void stl_decompose(std::span<const double> y, const StlOptions& opt,
                   Workspace& ws, std::span<double> trend,
                   std::span<double> seasonal, std::span<double> residual,
                   std::span<double> robustness_out) {
  const int n = static_cast<int>(y.size());
  const int p = opt.period;
  if (p < 2) throw std::invalid_argument("stl_decompose: period must be >= 2");
  if (n < 2 * p) {
    throw std::invalid_argument("stl_decompose: need at least two periods of data");
  }
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t up = static_cast<std::size_t>(p);

  const int n_s = next_odd(std::max(opt.seasonal_span, 7));
  const int n_t = opt.trend_span > 0 ? next_odd(opt.trend_span)
                                     : default_trend_span(p, n_s);
  const int n_l = opt.lowpass_span > 0 ? next_odd(opt.lowpass_span) : next_odd(p);

  auto default_jump = [](int explicit_jump, int span) {
    if (explicit_jump > 0) return explicit_jump;
    return std::max(1, span / 10);
  };
  const LoessOptions seasonal_loess{n_s, opt.seasonal_degree,
                                    default_jump(opt.seasonal_jump, n_s)};
  const LoessOptions trend_loess{n_t, opt.trend_degree,
                                 default_jump(opt.trend_jump, n_t)};
  const LoessOptions lowpass_loess{n_l, opt.lowpass_degree,
                                   default_jump(opt.lowpass_jump, n_l)};

  std::fill(trend.begin(), trend.end(), 0.0);
  std::fill(seasonal.begin(), seasonal.end(), 0.0);
  std::fill(residual.begin(), residual.end(), 0.0);

  // Scratch, all leased: the longest cycle subseries has ceil(n/p)
  // points, and the moving-average cascade shrinks n+2p -> n+p+1 ->
  // n+2 -> n.  A warm workspace serves every outer/inner iteration
  // (and every subsequent block) without touching the heap.
  const std::size_t sub_cap = (un + up - 1) / up;
  auto detrended = ws.acquire(un);
  auto extended = ws.acquire(un + 2 * up);  // cycle-subseries output
  auto deseason = ws.acquire(un);
  auto sub = ws.acquire(sub_cap);
  auto sub_rho = ws.acquire(sub_cap);
  auto sub_smooth = ws.acquire(sub_cap + 2);
  auto ma1 = ws.acquire(un + up + 1);
  auto ma2 = ws.acquire(un + 2);
  auto ma3 = ws.acquire(un);
  auto lowpass = ws.acquire(un);
  auto rho = ws.acquire(un);  // robustness weights
  bool have_rho = false;      // "empty" until outer pass 2

  const int outer_passes = std::max(opt.outer_iterations, 0) + 1;
  for (int outer = 0; outer < outer_passes; ++outer) {
    const std::span<const double> rho_span =
        have_rho ? std::span<const double>(rho.data(), un)
                 : std::span<const double>{};
    for (int inner = 0; inner < std::max(opt.inner_iterations, 1); ++inner) {
      // Step 1: detrend.
      for (std::size_t i = 0; i < un; ++i) detrended[i] = y[i] - trend[i];
      // Step 2: cycle-subseries smoothing, extended one period each way.
      std::fill_n(extended.data(), un + 2 * up, 0.0);
      for (std::size_t phase = 0; phase < up; ++phase) {
        std::size_t len = 0;
        for (std::size_t i = phase; i < un; i += up) {
          sub[len] = detrended[i];
          if (have_rho) sub_rho[len] = rho[i];
          ++len;
        }
        if (len == 0) continue;
        const std::span<const double> srho =
            have_rho ? std::span<const double>(sub_rho.data(), len)
                     : std::span<const double>{};
        loess_smooth_extended(std::span<const double>(sub.data(), len),
                              seasonal_loess, srho,
                              std::span<double>(sub_smooth.data(), len + 2));
        // sub_smooth[k] corresponds to subseries position k-1, i.e. full
        // series index phase + (k-1)*p; with the +p shift of `extended`
        // that lands at extended[phase + k*p].
        for (std::size_t k = 0; k < len + 2; ++k) {
          const std::size_t idx = phase + k * up;
          if (idx < un + 2 * up) extended[idx] = sub_smooth[k];
        }
      }
      // Step 3: low-pass filter of the extended seasonal: MA(p), MA(p),
      // MA(3), then LOESS(n_l).  Output length: n.
      moving_average(std::span<const double>(extended.data(), un + 2 * up), p,
                     std::span<double>(ma1.data(), un + up + 1));
      moving_average(std::span<const double>(ma1.data(), un + up + 1), p,
                     std::span<double>(ma2.data(), un + 2));
      moving_average(std::span<const double>(ma2.data(), un + 2), 3,
                     std::span<double>(ma3.data(), un));
      loess_smooth(std::span<const double>(ma3.data(), un), lowpass_loess, {},
                   std::span<double>(lowpass.data(), un));
      // Step 4: seasonal = extended(middle) - lowpass.
      for (std::size_t i = 0; i < un; ++i) {
        seasonal[i] = extended[i + up] - lowpass[i];
      }
      // Step 5: deseasonalize.
      for (std::size_t i = 0; i < un; ++i) deseason[i] = y[i] - seasonal[i];
      // Step 6: trend smoothing (loess writes every position of `trend`).
      loess_smooth(std::span<const double>(deseason.data(), un), trend_loess,
                   rho_span, trend);
    }
    // Residuals and (for all but the last pass) robustness weights.
    for (std::size_t i = 0; i < un; ++i) {
      residual[i] = y[i] - trend[i] - seasonal[i];
    }
    if (outer + 1 < outer_passes) {
      auto abs_r = ws.acquire(un);
      for (std::size_t i = 0; i < un; ++i) abs_r[i] = std::abs(residual[i]);
      const double h = 6.0 * median(abs_r.span(), ws);
      std::fill_n(rho.data(), un, 1.0);
      have_rho = true;
      if (h > 0.0) {
        for (std::size_t i = 0; i < un; ++i) {
          const double u = abs_r[i] / h;
          if (u >= 1.0) {
            rho[i] = 0.0;
          } else {
            const double t = 1.0 - u * u;
            rho[i] = t * t;  // bisquare
          }
        }
      }
    }
  }
  if (!robustness_out.empty() && have_rho) {
    std::copy_n(rho.data(), un, robustness_out.begin());
  }
}

StlDecomposition stl_decompose(std::span<const double> y, const StlOptions& opt) {
  StlDecomposition out;
  out.trend.assign(y.size(), 0.0);
  out.seasonal.assign(y.size(), 0.0);
  out.residual.assign(y.size(), 0.0);
  if (opt.outer_iterations > 0) out.robustness.assign(y.size(), 0.0);
  Workspace ws;
  stl_decompose(y, opt, ws, out.trend, out.seasonal, out.residual,
                out.robustness);
  return out;
}

StlSeries stl_decompose(const util::TimeSeries& series, const StlOptions& opt) {
  const auto d = stl_decompose(series.span(), opt);
  return StlSeries{
      util::TimeSeries(series.start(), series.step(), d.trend),
      util::TimeSeries(series.start(), series.step(), d.seasonal),
      util::TimeSeries(series.start(), series.step(), d.residual),
  };
}

}  // namespace diurnal::analysis
