#include "analysis/batch_analyzer.h"

#include <stdexcept>

namespace diurnal::analysis {

void BatchAnalyzer::run_detection_chain(
    std::span<const std::span<const double>> series, const StlOptions& stl,
    const CusumOptions& cusum) {
  const std::size_t lanes = series.size();
  if (lanes > kMaxLanes) {
    throw std::invalid_argument("BatchAnalyzer: too many lanes");
  }
  lanes_ = lanes;
  if (lanes == 0) {
    samples_ = 0;
    return;
  }
  const std::size_t n = series[0].size();
  for (const auto& s : series) {
    if (s.size() != n) {
      throw std::invalid_argument(
          "BatchAnalyzer: all lanes must share one length");
    }
  }
  samples_ = n;
  y_soa_.resize(n * lanes);
  trend_soa_.resize(n * lanes);
  seasonal_soa_.resize(n * lanes);
  residual_soa_.resize(n * lanes);
  z_soa_.resize(n * lanes);
  trend_rows_.resize(n * lanes);
  z_rows_.resize(n * lanes);

  soa_gather(series, n, y_soa_.data());
  stl_decompose_batch(y_soa_.data(), lanes, n, stl, ws_, trend_soa_.data(),
                      seasonal_soa_.data(), residual_soa_.data());
  zscore_batch(trend_soa_.data(), lanes, n, z_soa_.data());
  for (std::size_t j = 0; j < lanes; ++j) {
    soa_scatter_lane(trend_soa_.data(), lanes, n, j,
                     trend_rows_.data() + j * n);
    soa_scatter_lane(z_soa_.data(), lanes, n, j, z_rows_.data() + j * n);
    // CUSUM stays scalar per lane: its excursion state machine is
    // data-dependent and already two orders of magnitude faster than
    // STL (DESIGN "Batched SoA analysis kernels").
    cusum_[j].scan(z(j), cusum);
  }
}

std::span<const double> BatchAnalyzer::trend(std::size_t lane) const noexcept {
  return {trend_rows_.data() + lane * samples_, samples_};
}

std::span<const double> BatchAnalyzer::z(std::size_t lane) const noexcept {
  return {z_rows_.data() + lane * samples_, samples_};
}

std::span<const ChangePoint> BatchAnalyzer::changes(
    std::size_t lane) const noexcept {
  return cusum_[lane].confirmed();
}

void BatchAnalyzer::diurnal(std::span<const std::span<const double>> series,
                            double samples_per_day, const DiurnalOptions& opt,
                            std::span<DiurnalResult> out) {
  const std::size_t lanes = series.size();
  if (lanes > kMaxLanes || out.size() < lanes) {
    throw std::invalid_argument("BatchAnalyzer: bad diurnal batch shape");
  }
  if (lanes == 0) return;
  const std::size_t n = series[0].size();
  for (const auto& s : series) {
    if (s.size() != n) {
      throw std::invalid_argument(
          "BatchAnalyzer: all lanes must share one length");
    }
  }
  y_soa_.resize(n * lanes);
  soa_gather(series, n, y_soa_.data());
  test_diurnal_batch(y_soa_.data(), lanes, n, samples_per_day, opt, ws_,
                     out.data());
}

}  // namespace diurnal::analysis
