#include "analysis/cusum.h"

#include <algorithm>

namespace diurnal::analysis {

void OnlineCusum::begin(const CusumOptions& opt) {
  opt_ = opt;
  x_.clear();
  g_pos_.clear();
  g_neg_.clear();
  changes_.clear();
  i_ = 1;
  gp_ = gn_ = 0.0;
  tap_ = tan_ = 0;
  excursion_ = false;
  up_ = false;
  g_ = peak_ = 0.0;
  start_ = alarm_ = end_ = j_ = 0;
}

void OnlineCusum::confirm() {
  ChangePoint cp;
  cp.start = start_;
  cp.alarm = alarm_;
  cp.end = end_;
  cp.direction = up_ ? ChangeDirection::kUp : ChangeDirection::kDown;
  cp.amplitude = x_[end_] - x_[start_];
  changes_.push_back(cp);
  // Reset both accumulators after the excursion and resume scanning at
  // end + 1 (the batch loop's i = max(i, end) plus its increment; the
  // samples the excursion scan consumed past `end` are re-accumulated,
  // exactly as in the batch pass).
  gp_ = gn_ = 0.0;
  tap_ = tan_ = end_;
  i_ = end_ + 1;
  excursion_ = false;
}

void OnlineCusum::drive(bool at_end) {
  const std::size_t n = x_.size();
  for (;;) {
    if (excursion_) {
      // Track the excursion forward to estimate where it stops growing:
      // continue the same-direction accumulation (without drift) and
      // take the argmax; confirm once it decays to half its peak or the
      // stream ends.
      if (j_ + 1 < n) {
        ++j_;
        const double sj = x_[j_] - x_[j_ - 1];
        g_ += up_ ? sj : -sj;
        if (g_ > peak_) {
          peak_ = g_;
          end_ = j_;
        }
        if (g_ <= 0.0 || g_ < 0.5 * peak_) confirm();
      } else if (at_end) {
        confirm();
      } else {
        return;  // still growing: wait for more samples
      }
      continue;
    }
    if (i_ >= n) return;
    const double s = x_[i_] - x_[i_ - 1];
    gp_ = gp_ + s - opt_.drift;
    gn_ = gn_ - s - opt_.drift;
    if (gp_ < 0.0) {
      gp_ = 0.0;
      tap_ = i_;
    }
    if (gn_ < 0.0) {
      gn_ = 0.0;
      tan_ = i_;
    }
    g_pos_[i_] = gp_;
    g_neg_[i_] = gn_;
    if (gp_ > opt_.threshold || gn_ > opt_.threshold) {
      up_ = gp_ > opt_.threshold;
      start_ = up_ ? tap_ : tan_;
      alarm_ = i_;
      g_ = up_ ? gp_ : gn_;
      peak_ = g_;
      end_ = i_;
      j_ = i_;
      excursion_ = true;
    } else {
      ++i_;
    }
  }
}

void OnlineCusum::push(double value) {
  x_.push_back(value);
  g_pos_.push_back(0.0);
  g_neg_.push_back(0.0);
  drive(false);
}

void OnlineCusum::scan(std::span<const double> x, const CusumOptions& opt) {
  begin(opt);
  for (const double v : x) push(v);
  end_of_stream();
}

CusumResult OnlineCusum::finish() {
  drive(true);
  CusumResult res;
  res.changes = std::move(changes_);
  res.g_pos = std::move(g_pos_);
  res.g_neg = std::move(g_neg_);
  return res;
}

void OnlineCusum::save(util::StateWriter& w) const {
  w.f64(opt_.threshold);
  w.f64(opt_.drift);
  w.f64_span(x_);
  w.f64_span(g_pos_);
  w.f64_span(g_neg_);
  w.u64(changes_.size());
  for (const ChangePoint& cp : changes_) {
    w.u64(cp.start);
    w.u64(cp.alarm);
    w.u64(cp.end);
    w.u8(cp.direction == ChangeDirection::kUp ? 1 : 0);
    w.f64(cp.amplitude);
  }
  w.u64(i_);
  w.f64(gp_);
  w.f64(gn_);
  w.u64(tap_);
  w.u64(tan_);
  w.boolean(excursion_);
  w.boolean(up_);
  w.f64(g_);
  w.f64(peak_);
  w.u64(start_);
  w.u64(alarm_);
  w.u64(end_);
  w.u64(j_);
}

void OnlineCusum::restore(util::StateReader& r) {
  opt_.threshold = r.f64();
  opt_.drift = r.f64();
  r.f64_span(x_);
  r.f64_span(g_pos_);
  r.f64_span(g_neg_);
  const std::uint64_t n = r.u64();
  changes_.clear();
  for (std::uint64_t k = 0; k < n; ++k) {
    ChangePoint cp;
    cp.start = r.u64();
    cp.alarm = r.u64();
    cp.end = r.u64();
    cp.direction = r.u8() != 0 ? ChangeDirection::kUp : ChangeDirection::kDown;
    cp.amplitude = r.f64();
    changes_.push_back(cp);
  }
  i_ = r.u64();
  gp_ = r.f64();
  gn_ = r.f64();
  tap_ = r.u64();
  tan_ = r.u64();
  excursion_ = r.boolean();
  up_ = r.boolean();
  g_ = r.f64();
  peak_ = r.f64();
  start_ = r.u64();
  alarm_ = r.u64();
  end_ = r.u64();
  j_ = r.u64();
}

CusumResult cusum_detect(std::span<const double> x, const CusumOptions& opt) {
  OnlineCusum c;
  c.begin(opt);
  for (const double v : x) c.push(v);
  return c.finish();
}

std::vector<DatedChange> cusum_detect_dated(const util::TimeSeries& series,
                                            const CusumOptions& opt) {
  const auto res = cusum_detect(series.span(), opt);
  std::vector<DatedChange> out;
  out.reserve(res.changes.size());
  for (const auto& cp : res.changes) {
    out.push_back(DatedChange{cp, series.time_at(cp.start),
                              series.time_at(cp.alarm), series.time_at(cp.end)});
  }
  return out;
}

}  // namespace diurnal::analysis
