#include "analysis/cusum.h"

#include <algorithm>

namespace diurnal::analysis {

CusumResult cusum_detect(std::span<const double> x, const CusumOptions& opt) {
  CusumResult res;
  const std::size_t n = x.size();
  res.g_pos.assign(n, 0.0);
  res.g_neg.assign(n, 0.0);
  if (n < 2) return res;

  double gp = 0.0, gn = 0.0;
  std::size_t tap = 0, tan = 0;  // last zero-crossings of each accumulator
  for (std::size_t i = 1; i < n; ++i) {
    const double s = x[i] - x[i - 1];
    gp = gp + s - opt.drift;
    gn = gn - s - opt.drift;
    if (gp < 0.0) {
      gp = 0.0;
      tap = i;
    }
    if (gn < 0.0) {
      gn = 0.0;
      tan = i;
    }
    res.g_pos[i] = gp;
    res.g_neg[i] = gn;

    if (gp > opt.threshold || gn > opt.threshold) {
      ChangePoint cp;
      cp.alarm = i;
      const bool up = gp > opt.threshold;
      cp.direction = up ? ChangeDirection::kUp : ChangeDirection::kDown;
      cp.start = up ? tap : tan;
      // Track the excursion forward to estimate where it stops growing:
      // continue the same-direction accumulation (without drift) and
      // take the argmax; stop once it decays to half its peak or the
      // series ends.
      double g = up ? gp : gn;
      double peak = g;
      std::size_t end = i;
      std::size_t j = i;
      while (j + 1 < n) {
        ++j;
        const double sj = x[j] - x[j - 1];
        g += up ? sj : -sj;
        if (g > peak) {
          peak = g;
          end = j;
        }
        if (g <= 0.0 || g < 0.5 * peak) break;
      }
      cp.end = end;
      cp.amplitude = x[cp.end] - x[cp.start];
      res.changes.push_back(cp);

      // Reset both accumulators after the excursion and resume scanning.
      gp = gn = 0.0;
      tap = tan = end;
      i = std::max(i, end);
    }
  }
  return res;
}

std::vector<DatedChange> cusum_detect_dated(const util::TimeSeries& series,
                                            const CusumOptions& opt) {
  const auto res = cusum_detect(series.span(), opt);
  std::vector<DatedChange> out;
  out.reserve(res.changes.size());
  for (const auto& cp : res.changes) {
    out.push_back(DatedChange{cp, series.time_at(cp.start),
                              series.time_at(cp.alarm), series.time_at(cp.end)});
  }
  return out;
}

}  // namespace diurnal::analysis
