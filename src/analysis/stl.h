// STL: Seasonal-Trend decomposition using LOESS (Cleveland, Cleveland,
// McRae & Terpenning 1990) — the trend extractor the paper adopts in
// section 2.5 after finding it more robust to outliers than the naive
// seasonal model.
#pragma once

#include <span>
#include <vector>

#include "analysis/workspace.h"
#include "util/timeseries.h"

namespace diurnal::analysis {

struct StlOptions {
  int period = 24;        ///< n_p: samples per season (e.g. 24 hourly, 168 weekly)
  int seasonal_span = 7;  ///< n_s: cycle-subseries LOESS span (odd, >= 7)
  int trend_span = 0;     ///< n_t: 0 = Cleveland default from n_p and n_s
  int lowpass_span = 0;   ///< n_l: 0 = smallest odd >= n_p
  int seasonal_degree = 1;
  int trend_degree = 1;
  int lowpass_degree = 1;
  int inner_iterations = 2;  ///< n_i
  int outer_iterations = 1;  ///< n_o: robustness passes (0 = non-robust)
  /// Evaluate-and-interpolate strides; 0 = span/10 heuristic.
  int seasonal_jump = 1;
  int trend_jump = 0;
  int lowpass_jump = 0;
};

struct StlDecomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> residual;
  std::vector<double> robustness;  ///< final robustness weights (empty if n_o = 0)
};

/// Decomposes y (equally spaced, no missing values) into trend + seasonal
/// + residual.  y.size() must be at least 2 * period.
/// Throws std::invalid_argument for shorter series or period < 2.
StlDecomposition stl_decompose(std::span<const double> y, const StlOptions& opt);

/// Span-based decomposition into caller storage; every scratch buffer
/// is leased from `ws`, so a warm workspace runs allocation-free.
/// trend/seasonal/residual must each hold y.size() elements and must
/// not alias y, each other, or ws-leased storage.  `robustness_out` is
/// empty or y.size() elements; when non-empty and opt.outer_iterations
/// > 0 it receives the final robustness weights.  Bit-identical to the
/// vector overload.
void stl_decompose(std::span<const double> y, const StlOptions& opt,
                   Workspace& ws, std::span<double> trend,
                   std::span<double> seasonal, std::span<double> residual,
                   std::span<double> robustness_out = {});

/// Convenience overload mapping a TimeSeries; returns components as
/// TimeSeries aligned with the input.
struct StlSeries {
  util::TimeSeries trend;
  util::TimeSeries seasonal;
  util::TimeSeries residual;
};
StlSeries stl_decompose(const util::TimeSeries& series, const StlOptions& opt);

/// The Cleveland default trend span: smallest odd integer >=
/// 1.5 * period / (1 - 1.5/seasonal_span).
int default_trend_span(int period, int seasonal_span) noexcept;

}  // namespace diurnal::analysis
