// Logistic regression used to select under-probed blocks for additional
// probing (paper section 3.2.3): the full-block-scan time is modeled from
// |E(b)| (scanned-address count) and A (expected availability), and any
// block predicted to need more than 6 hours is scheduled for extra probes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace diurnal::analysis {

struct LogisticOptions {
  int epochs = 400;
  double learning_rate = 0.5;
  double l2 = 1e-4;
};

/// A binary logistic-regression model over dense feature vectors.
/// Features are standardized internally (mean/stddev from fit data).
class LogisticModel {
 public:
  /// Fits with gradient descent.  `features[i]` must all have the same
  /// dimensionality; labels are 0/1.  Throws on size mismatch.
  void fit(const std::vector<std::vector<double>>& features,
           const std::vector<int>& labels, const LogisticOptions& opt = {});

  /// Probability of label 1.
  double predict_proba(std::span<const double> x) const;

  /// Hard decision at the given probability cutoff.
  bool predict(std::span<const double> x, double cutoff = 0.5) const;

  const std::vector<double>& weights() const noexcept { return weights_; }
  double bias() const noexcept { return bias_; }
  bool fitted() const noexcept { return !weights_.empty(); }

 private:
  std::vector<double> weights_;
  std::vector<double> mean_;
  std::vector<double> scale_;
  double bias_ = 0.0;
};

/// Confusion-matrix summary for binary classification.
struct BinaryMetrics {
  std::int64_t tp = 0, fp = 0, tn = 0, fn = 0;
  double precision() const noexcept {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double recall() const noexcept {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
  double accuracy() const noexcept {
    const auto total = tp + fp + tn + fn;
    return total == 0 ? 0.0 : static_cast<double>(tp + tn) / total;
  }
  double false_negative_rate() const noexcept {
    return tp + fn == 0 ? 0.0 : static_cast<double>(fn) / (tp + fn);
  }
};

/// Evaluates a fitted model against labeled data.
BinaryMetrics evaluate(const LogisticModel& model,
                       const std::vector<std::vector<double>>& features,
                       const std::vector<int>& labels, double cutoff = 0.5);

}  // namespace diurnal::analysis
