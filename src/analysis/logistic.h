// Logistic regression used to select under-probed blocks for additional
// probing (paper section 3.2.3): the full-block-scan time is modeled from
// |E(b)| (scanned-address count) and A (expected availability), and any
// block predicted to need more than 6 hours is scheduled for extra probes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace diurnal::analysis {

struct LogisticOptions {
  int epochs = 400;
  double learning_rate = 0.5;
  double l2 = 1e-4;
};

/// A dense row-major feature-matrix view: sample i is
/// data.subspan(i * dim, dim).  data.size() must be a multiple of dim.
/// A view, not an owner — the caller keeps the backing storage alive.
struct FeatureMatrix {
  std::span<const double> data;
  std::size_t dim = 0;

  /// Explicit so brace-literals at call sites keep resolving to the
  /// nested-vector overloads instead of becoming ambiguous.
  explicit FeatureMatrix(std::span<const double> d, std::size_t k) noexcept
      : data(d), dim(k) {}

  std::size_t rows() const noexcept { return dim == 0 ? 0 : data.size() / dim; }
  std::span<const double> row(std::size_t i) const noexcept {
    return data.subspan(i * dim, dim);
  }
};

/// A binary logistic-regression model over dense feature vectors.
/// Features are standardized internally (mean/stddev from fit data).
class LogisticModel {
 public:
  /// Fits with gradient descent over a flat row-major feature matrix;
  /// labels are 0/1, one per row.  Throws on empty data, size mismatch,
  /// or data.size() not a multiple of dim.
  ///
  /// Aliasing: `features` and `labels` are read-only and may alias each
  /// other or any caller storage, but must NOT view this model's own
  /// internal buffers (weights()/bias state) — fit() reallocates them.
  void fit(FeatureMatrix features, std::span<const int> labels,
           const LogisticOptions& opt = {});

  /// Nested-vector convenience wrapper; flattens and delegates.
  /// Throws on ragged rows.  Bit-identical to the span overload.
  void fit(const std::vector<std::vector<double>>& features,
           const std::vector<int>& labels, const LogisticOptions& opt = {});

  /// Probability of label 1.
  double predict_proba(std::span<const double> x) const;

  /// Hard decision at the given probability cutoff.
  bool predict(std::span<const double> x, double cutoff = 0.5) const;

  const std::vector<double>& weights() const noexcept { return weights_; }
  double bias() const noexcept { return bias_; }
  bool fitted() const noexcept { return !weights_.empty(); }

 private:
  std::vector<double> weights_;
  std::vector<double> mean_;
  std::vector<double> scale_;
  double bias_ = 0.0;
};

/// Confusion-matrix summary for binary classification.
struct BinaryMetrics {
  std::int64_t tp = 0, fp = 0, tn = 0, fn = 0;
  double precision() const noexcept {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double recall() const noexcept {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
  double accuracy() const noexcept {
    const auto total = tp + fp + tn + fn;
    return total == 0 ? 0.0 : static_cast<double>(tp + tn) / total;
  }
  double false_negative_rate() const noexcept {
    return tp + fn == 0 ? 0.0 : static_cast<double>(fn) / (tp + fn);
  }
};

/// Evaluates a fitted model against labeled data (flat row-major).
BinaryMetrics evaluate(const LogisticModel& model, FeatureMatrix features,
                       std::span<const int> labels, double cutoff = 0.5);

/// Nested-vector convenience overload.
BinaryMetrics evaluate(const LogisticModel& model,
                       const std::vector<std::vector<double>>& features,
                       const std::vector<int>& labels, double cutoff = 0.5);

}  // namespace diurnal::analysis
