#include "analysis/batch.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numbers>
#include <span>
#include <stdexcept>

#include "analysis/simd.h"
#include "analysis/stats.h"

#if defined(__GNUC__) || defined(__clang__)
#define DIURNAL_RESTRICT __restrict
#else
#define DIURNAL_RESTRICT
#endif

#if defined(__x86_64__) || defined(__i386__)
#define DIURNAL_BATCH_HAVE_AVX2 1
#else
#define DIURNAL_BATCH_HAVE_AVX2 0
#endif

namespace diurnal::analysis {

namespace {

// The kernel bodies, compiled once at the build's baseline ISA...
namespace generic {
#include "analysis/batch_kernels.inc"
}  // namespace generic

// ...and once more as an AVX2 clone on x86.  Only "avx2" is enabled —
// never "fma" — so the clone cannot contract a*b+c and change a
// rounding; see the bitwise contract in batch.h / simd.h.
#if DIURNAL_BATCH_HAVE_AVX2
#if defined(__clang__)
#pragma clang attribute push(__attribute__((target("avx2"))), \
                             apply_to = function)
namespace avx2 {
#include "analysis/batch_kernels.inc"
}  // namespace avx2
#pragma clang attribute pop
#else
#pragma GCC push_options
#pragma GCC target("avx2")
namespace avx2 {
#include "analysis/batch_kernels.inc"
}  // namespace avx2
#pragma GCC pop_options
#endif
#endif  // DIURNAL_BATCH_HAVE_AVX2

// One function pointer per kernel; both clones share batch_kernels.inc
// so the table shape is the clone list.
struct Kernels {
  void (*loess_smooth)(const double*, std::size_t, std::size_t,
                       const LoessOptions&, const double*, double*);
  void (*loess_smooth_extended)(const double*, std::size_t, std::size_t,
                                const LoessOptions&, const double*, double*);
  void (*moving_average)(const double*, std::size_t, std::size_t, int,
                         double*);
  void (*goertzel)(const double*, std::size_t, std::size_t, double, double*);
  void (*zscore)(const double*, std::size_t, std::size_t, double*);
};

constexpr Kernels kGenericKernels{
    generic::loess_smooth_batch_impl,
    generic::loess_smooth_extended_batch_impl,
    generic::moving_average_batch_impl,
    generic::goertzel_power_batch_impl,
    generic::zscore_batch_impl,
};

#if DIURNAL_BATCH_HAVE_AVX2
constexpr Kernels kAvx2Kernels{
    avx2::loess_smooth_batch_impl,
    avx2::loess_smooth_extended_batch_impl,
    avx2::moving_average_batch_impl,
    avx2::goertzel_power_batch_impl,
    avx2::zscore_batch_impl,
};
#endif

// Resolves the clone for this call and records the dispatch.  Each
// public entry point calls this exactly once, so the simd counters
// count user-visible batched operations, not inner kernels.
const Kernels& dispatch() noexcept {
  const simd::IsaLevel level = simd::active_level();
  simd::record_dispatch(level);
#if DIURNAL_BATCH_HAVE_AVX2
  if (level == simd::IsaLevel::kAvx2) return kAvx2Kernels;
#endif
  return kGenericKernels;
}

void check_lanes(std::size_t lanes) {
  if (lanes > kMaxBatchLanes) {
    throw std::invalid_argument(
        "batch kernels accept at most kMaxBatchLanes lanes");
  }
}

}  // namespace

void soa_gather(std::span<const std::span<const double>> series,
                std::size_t n, double* soa) {
  const std::size_t lanes = series.size();
  check_lanes(lanes);
  for (std::size_t j = 0; j < lanes; ++j) {
    const double* src = series[j].data();
    for (std::size_t i = 0; i < n; ++i) soa[i * lanes + j] = src[i];
  }
}

void soa_scatter_lane(const double* soa, std::size_t lanes, std::size_t n,
                      std::size_t lane, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = soa[i * lanes + lane];
}

void loess_smooth_batch(const double* y_soa, std::size_t lanes, std::size_t n,
                        const LoessOptions& opt, const double* rho_soa,
                        double* out_soa) {
  check_lanes(lanes);
  if (lanes == 0) return;
  dispatch().loess_smooth(y_soa, lanes, n, opt, rho_soa, out_soa);
}

void loess_smooth_extended_batch(const double* y_soa, std::size_t lanes,
                                 std::size_t n, const LoessOptions& opt,
                                 const double* rho_soa, double* out_soa) {
  check_lanes(lanes);
  if (lanes == 0) return;
  dispatch().loess_smooth_extended(y_soa, lanes, n, opt, rho_soa, out_soa);
}

void moving_average_batch(const double* in_soa, std::size_t lanes,
                          std::size_t in_len, int m, double* out_soa) {
  check_lanes(lanes);
  if (lanes == 0) return;
  dispatch().moving_average(in_soa, lanes, in_len, m, out_soa);
}

void goertzel_power_batch(const double* x_soa, std::size_t lanes,
                          std::size_t n, double cycles, double* out) {
  check_lanes(lanes);
  if (lanes == 0) return;
  dispatch().goertzel(x_soa, lanes, n, cycles, out);
}

void zscore_batch(const double* x_soa, std::size_t lanes, std::size_t n,
                  double* z_soa) {
  check_lanes(lanes);
  if (lanes == 0) return;
  dispatch().zscore(x_soa, lanes, n, z_soa);
}

void stl_decompose_batch(const double* y_soa, std::size_t lanes,
                         std::size_t n, const StlOptions& opt, Workspace& ws,
                         double* trend_soa, double* seasonal_soa,
                         double* residual_soa) {
  check_lanes(lanes);
  if (lanes == 0) return;
  const Kernels& kern = dispatch();
  const std::size_t W = lanes;
  const int p = opt.period;
  if (p < 2) {
    throw std::invalid_argument("stl_decompose_batch: period must be >= 2");
  }
  if (n < 2 * static_cast<std::size_t>(p)) {
    throw std::invalid_argument(
        "stl_decompose_batch: need at least two periods of data");
  }
  const std::size_t un = n;
  const std::size_t up = static_cast<std::size_t>(p);

  // Same span/jump derivation as the scalar stl_decompose.
  const auto next_odd = [](int v) noexcept {
    return (v % 2 == 0) ? v + 1 : v;
  };
  const int n_s = next_odd(std::max(opt.seasonal_span, 7));
  const int n_t = opt.trend_span > 0 ? next_odd(opt.trend_span)
                                     : default_trend_span(p, n_s);
  const int n_l =
      opt.lowpass_span > 0 ? next_odd(opt.lowpass_span) : next_odd(p);
  const auto default_jump = [](int explicit_jump, int span) {
    if (explicit_jump > 0) return explicit_jump;
    return std::max(1, span / 10);
  };
  const LoessOptions seasonal_loess{n_s, opt.seasonal_degree,
                                    default_jump(opt.seasonal_jump, n_s)};
  const LoessOptions trend_loess{n_t, opt.trend_degree,
                                 default_jump(opt.trend_jump, n_t)};
  const LoessOptions lowpass_loess{n_l, opt.lowpass_degree,
                                   default_jump(opt.lowpass_jump, n_l)};

  std::fill_n(trend_soa, un * W, 0.0);
  std::fill_n(seasonal_soa, un * W, 0.0);
  std::fill_n(residual_soa, un * W, 0.0);

  // The scalar decomposition's scratch set, widened to W lanes each.
  const std::size_t sub_cap = (un + up - 1) / up;
  auto extended = ws.acquire((un + 2 * up) * W);
  auto deseason = ws.acquire(un * W);
  auto sub = ws.acquire(sub_cap * W);
  auto sub_rho = ws.acquire(sub_cap * W);
  auto sub_smooth = ws.acquire((sub_cap + 2) * W);
  auto ma1 = ws.acquire((un + up + 1) * W);
  auto ma2 = ws.acquire((un + 2) * W);
  auto ma3 = ws.acquire(un * W);
  auto lowpass = ws.acquire(un * W);
  auto rho = ws.acquire(un * W);
  bool have_rho = false;

  const int outer_passes = std::max(opt.outer_iterations, 0) + 1;
  for (int outer = 0; outer < outer_passes; ++outer) {
    const double* rho_ptr = have_rho ? rho.data() : nullptr;
    for (int inner = 0; inner < std::max(opt.inner_iterations, 1); ++inner) {
      // Steps 1+2: detrend fused into the cycle-subseries gather.  The
      // detrended series is only ever read phase-striped here, so the
      // subtraction happens in the gather rows (same expression, same
      // per-lane order as a separate detrend pass) instead of paying a
      // full write+read of an un*W scratch buffer per iteration.  Every
      // lane shares phase structure (one n for the batch), so the
      // gather/scatter rows are W-wide contiguous copies.  `extended`
      // needs no zero-fill: with n >= 2p every phase has len >= 1 and
      // the scatter below covers all un + 2p rows.
      for (std::size_t phase = 0; phase < up; ++phase) {
        std::size_t len = 0;
        for (std::size_t i = phase; i < un; i += up) {
          const double* yrow = y_soa + i * W;
          const double* trow = trend_soa + i * W;
          double* drow = sub.data() + len * W;
          for (std::size_t j = 0; j < W; ++j) drow[j] = yrow[j] - trow[j];
          if (have_rho) {
            const double* rrow = rho.data() + i * W;
            double* dr = sub_rho.data() + len * W;
            for (std::size_t j = 0; j < W; ++j) dr[j] = rrow[j];
          }
          ++len;
        }
        if (len == 0) continue;
        kern.loess_smooth_extended(sub.data(), W, len, seasonal_loess,
                                   have_rho ? sub_rho.data() : nullptr,
                                   sub_smooth.data());
        for (std::size_t k = 0; k < len + 2; ++k) {
          const std::size_t idx = phase + k * up;
          if (idx < un + 2 * up) {
            const double* srow = sub_smooth.data() + k * W;
            double* drow = extended.data() + idx * W;
            for (std::size_t j = 0; j < W; ++j) drow[j] = srow[j];
          }
        }
      }
      // Step 3: low-pass MA(p) -> MA(p) -> MA(3) -> LOESS(n_l).
      kern.moving_average(extended.data(), W, un + 2 * up, p, ma1.data());
      kern.moving_average(ma1.data(), W, un + up + 1, p, ma2.data());
      kern.moving_average(ma2.data(), W, un + 2, 3, ma3.data());
      kern.loess_smooth(ma3.data(), W, un, lowpass_loess, nullptr,
                        lowpass.data());
      // Steps 4+5: seasonal = extended(middle) - lowpass, fused with
      // deseason = y - seasonal (the fresh seasonal row is still in
      // registers; one pass instead of two over un*W).
      for (std::size_t i = 0; i < un; ++i) {
        const double* erow = extended.data() + (i + up) * W;
        const double* lrow = lowpass.data() + i * W;
        const double* yrow = y_soa + i * W;
        double* srow = seasonal_soa + i * W;
        double* drow = deseason.data() + i * W;
        for (std::size_t j = 0; j < W; ++j) {
          srow[j] = erow[j] - lrow[j];
          drow[j] = yrow[j] - srow[j];
        }
      }
      // Step 6: trend smoothing.
      kern.loess_smooth(deseason.data(), W, un, trend_loess, rho_ptr,
                        trend_soa);
    }
    for (std::size_t e = 0; e < un * W; ++e) {
      residual_soa[e] = y_soa[e] - trend_soa[e] - seasonal_soa[e];
    }
    if (outer + 1 < outer_passes) {
      // Per-lane bisquare weights.  The scalar path sorts that block's
      // absolute residuals for the median; extracting lane j preserves
      // the element sequence, so the sort and quantile match bit for
      // bit.
      auto abs_r = ws.acquire(un * W);
      for (std::size_t e = 0; e < un * W; ++e) {
        abs_r[e] = std::abs(residual_soa[e]);
      }
      auto med = ws.acquire(un);
      double h[kMaxBatchLanes];
      // quantile_sorted(.., 0.5) reads only the two middle order
      // statistics, which nth_element + min_element deliver in O(n)
      // with the same values a full sort would (|residual| never
      // yields -0.0, so equal keys share one bit pattern).  NaNs break
      // strict weak ordering — sort and nth_element may then disagree —
      // so a lane containing NaN takes the scalar's exact std::sort.
      const double qpos = 0.5 * static_cast<double>(un - 1);
      const std::size_t qlo = static_cast<std::size_t>(qpos);
      const std::size_t qhi = std::min(qlo + 1, un - 1);
      const double qfrac = qpos - static_cast<double>(qlo);
      for (std::size_t j = 0; j < W; ++j) {
        bool has_nan = false;
        for (std::size_t i = 0; i < un; ++i) {
          med[i] = abs_r[i * W + j];
          has_nan = has_nan || std::isnan(med[i]);
        }
        double m_lo;
        double m_hi;
        if (has_nan) {
          std::sort(med.data(), med.data() + un);
          m_lo = med[qlo];
          m_hi = med[qhi];
        } else {
          std::nth_element(med.data(), med.data() + qlo, med.data() + un);
          m_lo = med[qlo];
          m_hi = qhi == qlo
                     ? m_lo
                     : *std::min_element(med.data() + qlo + 1,
                                         med.data() + un);
        }
        h[j] = 6.0 * (m_lo * (1.0 - qfrac) + m_hi * qfrac);
      }
      std::fill_n(rho.data(), un * W, 1.0);
      have_rho = true;
      for (std::size_t j = 0; j < W; ++j) {
        if (h[j] > 0.0) {
          for (std::size_t i = 0; i < un; ++i) {
            const double u = abs_r[i * W + j] / h[j];
            if (u >= 1.0) {
              rho[i * W + j] = 0.0;
            } else {
              const double t = 1.0 - u * u;
              rho[i * W + j] = t * t;
            }
          }
        }
      }
    }
  }
}

namespace {

// Batched band_ratio (diurnal_test.cc): per-lane diurnal-band power
// ratio of the mean-removed window.  Lanes whose total power is not
// positive get ratio 0 and band 0, exactly like the scalar early
// return (their discarded Goertzel sums cost a little waste, never a
// different answer).
void band_ratio_batch(const Kernels& kern, const double* values,
                      std::size_t W, std::size_t n, double samples_per_day,
                      const DiurnalOptions& opt, Workspace& ws,
                      double* total_out, double* band_out,
                      double* ratio_out) {
  double m[kMaxBatchLanes];
  for (std::size_t j = 0; j < W; ++j) m[j] = 0.0;
  if (n > 0) {
    double s[kMaxBatchLanes];
    for (std::size_t j = 0; j < W; ++j) s[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = values + i * W;
      for (std::size_t j = 0; j < W; ++j) s[j] += row[j];
    }
    for (std::size_t j = 0; j < W; ++j) {
      m[j] = s[j] / static_cast<double>(n);
    }
  }
  auto lease = ws.acquire(n * W);
  double* x = lease.data();
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = values + i * W;
    double* xrow = x + i * W;
    for (std::size_t j = 0; j < W; ++j) xrow[j] = row[j] - m[j];
  }

  double total_power[kMaxBatchLanes];
  {
    double total[kMaxBatchLanes];
    for (std::size_t j = 0; j < W; ++j) total[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* xrow = x + i * W;
      for (std::size_t j = 0; j < W; ++j) total[j] += xrow[j] * xrow[j];
    }
    for (std::size_t j = 0; j < W; ++j) {
      total_power[j] = static_cast<double>(n) * total[j];
      total_out[j] = total_power[j];
      band_out[j] = 0.0;
    }
  }

  const double daily_cycles = static_cast<double>(n) / samples_per_day;
  double band[kMaxBatchLanes];
  double bin[kMaxBatchLanes];
  for (std::size_t j = 0; j < W; ++j) band[j] = 0.0;
  for (int h = 1; h <= std::max(opt.harmonics, 1); ++h) {
    const double c = daily_cycles * h;
    if (c >= static_cast<double>(n) / 2.0) break;  // beyond Nyquist
    kern.goertzel(x, W, n, c, bin);
    for (std::size_t j = 0; j < W; ++j) band[j] += bin[j];
    if (opt.include_sidebands && c > 1.5) {
      kern.goertzel(x, W, n, c - 1.0, bin);
      for (std::size_t j = 0; j < W; ++j) band[j] += bin[j];
      kern.goertzel(x, W, n, c + 1.0, bin);
      for (std::size_t j = 0; j < W; ++j) band[j] += bin[j];
    }
  }
  for (std::size_t j = 0; j < W; ++j) {
    if (total_power[j] <= 0.0) {
      ratio_out[j] = 0.0;  // band_out stays 0, like the scalar
      continue;
    }
    band_out[j] = 2.0 * band[j];
    ratio_out[j] = std::min(1.0, 2.0 * band[j] / total_power[j]);
  }
}

}  // namespace

void test_diurnal_batch(const double* x_soa, std::size_t lanes, std::size_t n,
                        double samples_per_day, const DiurnalOptions& opt,
                        Workspace& ws, DiurnalResult* out) {
  check_lanes(lanes);
  if (lanes == 0) return;
  const Kernels& kern = dispatch();
  const std::size_t W = lanes;
  for (std::size_t j = 0; j < W; ++j) out[j] = DiurnalResult{};
  if (samples_per_day <= 0.0 ||
      n < static_cast<std::size_t>(2 * samples_per_day)) {
    return;  // need at least two full days
  }
  double total[kMaxBatchLanes];
  double band[kMaxBatchLanes];
  double ratio[kMaxBatchLanes];
  band_ratio_batch(kern, x_soa, W, n, samples_per_day, opt, ws, total, band,
                   ratio);
  bool any_diurnal = false;
  for (std::size_t j = 0; j < W; ++j) {
    out[j].power_ratio = ratio[j];
    out[j].total_power = total[j];
    out[j].diurnal_power = band[j];
    out[j].diurnal = ratio[j] >= opt.min_power_ratio;
    any_diurnal = any_diurnal || out[j].diurnal;
  }

  // Duration strictness: evaluated for the whole batch when any lane
  // passed the first gate, applied only to lanes that did (the scalar
  // returns before segmenting for the rest, leaving segments == 0).
  const std::size_t seg_len = static_cast<std::size_t>(
      std::max(2.0, opt.segment_days * samples_per_day));
  const std::size_t segments = n / seg_len;
  if (!any_diurnal || segments < 2) return;
  int seg_pass[kMaxBatchLanes];
  for (std::size_t j = 0; j < W; ++j) seg_pass[j] = 0;
  const double seg_threshold = opt.min_power_ratio * opt.segment_ratio_factor;
  for (std::size_t s = 0; s < segments; ++s) {
    band_ratio_batch(kern, x_soa + s * seg_len * W, W, seg_len,
                     samples_per_day, opt, ws, total, band, ratio);
    for (std::size_t j = 0; j < W; ++j) {
      seg_pass[j] += ratio[j] >= seg_threshold;
    }
  }
  for (std::size_t j = 0; j < W; ++j) {
    if (!out[j].diurnal) continue;
    out[j].segments = static_cast<int>(segments);
    out[j].segments_diurnal = seg_pass[j];
    if (static_cast<double>(seg_pass[j]) <
        opt.min_segment_fraction * static_cast<double>(segments)) {
      out[j].diurnal = false;
    }
  }
}

}  // namespace diurnal::analysis
