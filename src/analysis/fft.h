// Spectral tools for the diurnality test (paper section 2.4).
//
// Two complementary paths:
//  * a radix-2 iterative FFT for power-of-two lengths (used where the
//    caller controls padding, and by the micro benches), and
//  * Goertzel evaluation of the DFT at an arbitrary real frequency,
//    which lets the diurnality test place bins exactly at the 24-hour
//    frequency and its harmonics for any series length.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "analysis/workspace.h"

namespace diurnal::analysis {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two (throws std::invalid_argument otherwise).
void fft_inplace(std::span<std::complex<double>> data, bool inverse = false);
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse = false);

/// FFT of a real series zero-padded to the next power of two.
std::vector<std::complex<double>> fft_real(std::span<const double> x);

/// FFT of a real series into the workspace's complex slot (valid until
/// the next complex_scratch() use on `ws`).
std::span<std::complex<double>> fft_real(std::span<const double> x,
                                         Workspace& ws);

/// Number of power-spectrum bins for a series of length n.
std::size_t power_spectrum_size(std::size_t n) noexcept;

/// |X[k]|^2 for k = 0 .. n/2 of the (zero-padded) FFT of x.
std::vector<double> power_spectrum(std::span<const double> x);

/// Same, writing into caller storage; out.size() must equal
/// power_spectrum_size(x.size()).  `out` must not alias `x`.
void power_spectrum(std::span<const double> x, std::span<double> out,
                    Workspace& ws);

/// Goertzel: squared magnitude of the DFT of x at `cycles` full periods
/// per series length (need not be integral, but bins are exact when it
/// is). DC is removed by the caller if desired.
double goertzel_power(std::span<const double> x, double cycles) noexcept;

/// Next power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n) noexcept;

}  // namespace diurnal::analysis
