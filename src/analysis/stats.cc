#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace diurnal::analysis {

double mean(std::span<const double> x) noexcept {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (const double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) noexcept {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double ss = 0.0;
  for (const double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size());
}

double stddev(std::span<const double> x) noexcept { return std::sqrt(variance(x)); }

double median(std::span<const double> x) { return quantile(x, 0.5); }

double median(std::span<const double> x, Workspace& ws) {
  return quantile(x, 0.5, ws);
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> x, double q) {
  if (x.empty()) return 0.0;
  std::vector<double> v(x.begin(), x.end());
  std::sort(v.begin(), v.end());
  return quantile_sorted(v, q);
}

double quantile(std::span<const double> x, double q, Workspace& ws) {
  if (x.empty()) return 0.0;
  auto v = ws.acquire(x.size());
  std::copy(x.begin(), x.end(), v.data());
  std::sort(v.data(), v.data() + v.size());
  return quantile_sorted(v.span(), q);
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ecdf_at(std::span<const double> x,
                            std::span<const double> thresholds) {
  std::vector<double> out(thresholds.size());
  Workspace ws;
  ecdf_at(x, thresholds, out, ws);
  return out;
}

void ecdf_at(std::span<const double> x, std::span<const double> thresholds,
             std::span<double> out, Workspace& ws) {
  auto sorted = ws.acquire(x.size());
  std::copy(x.begin(), x.end(), sorted.data());
  std::sort(sorted.data(), sorted.data() + sorted.size());
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const double t = thresholds[i];
    const auto* it =
        std::upper_bound(sorted.data(), sorted.data() + sorted.size(), t);
    out[i] = x.empty() ? 0.0
                       : static_cast<double>(it - sorted.data()) /
                             static_cast<double>(x.size());
  }
}

std::vector<CdfPoint> ecdf(std::span<const double> x, std::size_t max_points) {
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> out;
  if (sorted.empty() || max_points == 0) return out;
  const std::size_t n = sorted.size();
  const std::size_t points = std::min(max_points, n);
  out.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    // Sample evenly through the sorted values, always including the last.
    const std::size_t i = (points == 1) ? n - 1 : k * (n - 1) / (points - 1);
    out.push_back(CdfPoint{sorted[i],
                           static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  return out;
}

}  // namespace diurnal::analysis
