#include "analysis/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace diurnal::analysis {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
  fft_inplace(std::span<std::complex<double>>(data), inverse);
}

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& c : data) c /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> fft_real(std::span<const double> x) {
  const std::size_t n = next_pow2(std::max<std::size_t>(x.size(), 1));
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = x[i];
  fft_inplace(data);
  return data;
}

std::span<std::complex<double>> fft_real(std::span<const double> x,
                                         Workspace& ws) {
  const std::size_t n = next_pow2(std::max<std::size_t>(x.size(), 1));
  auto data = ws.complex_scratch(n);
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = x[i];
  for (std::size_t i = x.size(); i < n; ++i) data[i] = 0.0;
  fft_inplace(data);
  return data;
}

std::size_t power_spectrum_size(std::size_t n) noexcept {
  return next_pow2(std::max<std::size_t>(n, 1)) / 2 + 1;
}

std::vector<double> power_spectrum(std::span<const double> x) {
  std::vector<double> out(power_spectrum_size(x.size()));
  Workspace ws;
  power_spectrum(x, out, ws);
  return out;
}

void power_spectrum(std::span<const double> x, std::span<double> out,
                    Workspace& ws) {
  const auto spec = fft_real(x, ws);
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = std::norm(spec[k]);
}

double goertzel_power(std::span<const double> x, double cycles) noexcept {
  const std::size_t n = x.size();
  if (n == 0) return 0.0;
  const double w = 2.0 * std::numbers::pi * cycles / static_cast<double>(n);
  const double coeff = 2.0 * std::cos(w);
  double s_prev = 0.0, s_prev2 = 0.0;
  for (const double v : x) {
    const double s = v + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  // |X(f)|^2 = s1^2 + s2^2 - coeff*s1*s2
  return s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
}

}  // namespace diurnal::analysis
