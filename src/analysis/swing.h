// Daily-swing classification (paper section 2.4).
//
// The daily swing is the max-minus-min of the active-address count over
// each midnight-to-midnight UTC day.  A day is "wide" when the swing is
// at least `min_swing` addresses (paper: 5, tolerating a few uncorrelated
// machine restarts); a block has a *persistent* wide swing when some
// 7-consecutive-day window contains at least 4 wide days (tolerating
// weekends and 3-day holiday weekends).
#pragma once

#include <span>
#include <vector>

#include "analysis/workspace.h"
#include "util/timeseries.h"

namespace diurnal::analysis {

struct SwingOptions {
  double min_swing = 5.0;    ///< addresses/day for a "wide" day
  int window_days = 7;       ///< work-week window
  int min_wide_days = 4;     ///< wide days required within the window
};

struct SwingResult {
  bool wide = false;          ///< persistent wide swing present
  int wide_days = 0;          ///< total days with a wide swing
  int total_days = 0;         ///< days with data
  double max_daily_swing = 0; ///< largest single-day swing
  int best_window_wide = 0;   ///< most wide days in any window
};

/// Classifies the swing of an active-address series.
SwingResult classify_swing(const util::TimeSeries& series,
                           const SwingOptions& opt = {});

/// Same classification from precomputed per-day stats.
SwingResult classify_swing(const std::vector<util::DayStats>& days,
                           const SwingOptions& opt = {});

/// Allocation-free variant on raw samples: value[i] covers
/// [start + i*step, start + (i+1)*step); the per-day stats and the dense
/// wide-day axis are computed inline with scratch leased from `ws`.
/// Bit-identical to classify_swing(TimeSeries(start, step, values), opt).
SwingResult classify_swing(std::span<const double> values, util::SimTime start,
                           std::int64_t step, const SwingOptions& opt,
                           Workspace& ws);

}  // namespace diurnal::analysis
