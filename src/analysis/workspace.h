// Reusable scratch arena for the span-based analysis kernels.
//
// The per-block analysis chain (FFT diurnality test -> swing gate ->
// STL trend -> z-score -> CUSUM) needs a dozen scratch buffers per
// call.  Allocating them per block made the analysis stage the
// allocation-bound hot path of the fleet drive, so every kernel now
// takes `std::span<const double>` inputs and borrows scratch from a
// Workspace instead of owning vectors.
//
// Model: a Workspace owns a pool of double buffers built on
// `util::DefaultInitAllocator` (resizing never memsets storage the
// kernel is about to overwrite).  `acquire(n)` leases one buffer sized
// to n; the RAII Lease returns it on destruction.  Buffers grow to
// their high-water capacity and are then reused forever, so a warm
// workspace services the whole chain with zero heap traffic.
//
// Contracts:
//  * One Workspace per thread.  Nothing here is synchronized.
//  * Lease contents are indeterminate after acquire(); write before
//    reading (acquire_zero() when a kernel genuinely needs zeros).
//  * Leases must not outlive their Workspace.
//  * Releases may happen in any order; kernels nest freely (STL leases
//    around inner LOESS leases).
//  * complex_scratch() is a single slot: at most one live use at a
//    time (the FFT does not recurse).
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "util/default_init_allocator.h"

namespace diurnal::analysis {

class Workspace {
 public:
  using Vec = std::vector<double, util::DefaultInitAllocator<double>>;

  /// RAII handle on one pooled buffer; movable, returns the buffer on
  /// destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept : ws_(o.ws_), vec_(o.vec_), n_(o.n_) {
      o.ws_ = nullptr;
      o.vec_ = nullptr;
      o.n_ = 0;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        ws_ = o.ws_;
        vec_ = o.vec_;
        n_ = o.n_;
        o.ws_ = nullptr;
        o.vec_ = nullptr;
        o.n_ = 0;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    std::span<double> span() noexcept { return {vec_->data(), n_}; }
    std::span<const double> span() const noexcept { return {vec_->data(), n_}; }
    double* data() noexcept { return vec_->data(); }
    const double* data() const noexcept { return vec_->data(); }
    std::size_t size() const noexcept { return n_; }
    double& operator[](std::size_t i) noexcept { return (*vec_)[i]; }
    double operator[](std::size_t i) const noexcept { return (*vec_)[i]; }

    /// Returns the buffer early (the destructor is then a no-op).
    void release() noexcept;

   private:
    friend class Workspace;
    Lease(Workspace* ws, Vec* vec, std::size_t n) : ws_(ws), vec_(vec), n_(n) {}
    Workspace* ws_ = nullptr;
    Vec* vec_ = nullptr;
    std::size_t n_ = 0;
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Leases a buffer of n doubles with indeterminate contents.
  Lease acquire(std::size_t n);

  /// Leases a buffer of n zeros.
  Lease acquire_zero(std::size_t n);

  /// The single complex FFT slot, resized to n (contents overwritten by
  /// the caller).  Not nestable; see the header contract.
  std::span<std::complex<double>> complex_scratch(std::size_t n);

  /// Leases currently held (tests assert this returns to zero).
  std::size_t outstanding() const noexcept { return outstanding_; }

  /// Times an acquire had to allocate or grow a buffer.  A warm
  /// workspace stops incrementing; bench_analysis gates on this.
  std::size_t pool_misses() const noexcept { return pool_misses_; }

 private:
  void release(Vec* vec) noexcept;

  std::vector<std::unique_ptr<Vec>> slabs_;  ///< every buffer ever created
  std::vector<Vec*> free_;                   ///< buffers awaiting reuse
  std::vector<std::complex<double>> complex_;
  std::size_t outstanding_ = 0;
  std::size_t pool_misses_ = 0;
};

inline void Workspace::Lease::release() noexcept {
  if (ws_ != nullptr) ws_->release(vec_);
  ws_ = nullptr;
  vec_ = nullptr;
  n_ = 0;
}

}  // namespace diurnal::analysis
