// One reusable facade over the per-block analysis chain (diurnality
// test -> swing gate -> STL trend -> z-score -> CUSUM).
//
// A BlockAnalyzer owns one Workspace plus the persistent output buffers
// the chain writes into, so a warm analyzer runs every stage for block
// after block with zero steady-state heap traffic.  The fleet engine
// keeps one per worker thread.
//
// Contracts:
//  * One analyzer per thread (the Workspace is unsynchronized).
//  * Every returned span/view is valid only until the NEXT call of the
//    SAME stage on this analyzer (each stage has its own buffers, so
//    interleaving different stages is fine: the z-score of a trend may
//    be taken while the decomposition views are still live).
//  * Inputs must not alias the analyzer's own output buffers (i.e. do
//    not feed a stage its previous result), except where a method
//    documents otherwise — zscore() and cusum() read their input fully
//    before writing, so chaining decompose_stl().trend -> zscore() ->
//    cusum() is the supported pattern.
// Every stage is bit-identical to the corresponding standalone
// vector-based kernel; the fleet digest gates on this.
#pragma once

#include <span>

#include "analysis/cusum.h"
#include "analysis/diurnal_test.h"
#include "analysis/naive_seasonal.h"
#include "analysis/stl.h"
#include "analysis/swing.h"
#include "analysis/workspace.h"

namespace diurnal::analysis {

class BlockAnalyzer {
 public:
  BlockAnalyzer() = default;
  BlockAnalyzer(const BlockAnalyzer&) = delete;
  BlockAnalyzer& operator=(const BlockAnalyzer&) = delete;

  /// The arena backing this analyzer (for kernels not wrapped here).
  Workspace& workspace() noexcept { return ws_; }

  /// FFT/Goertzel diurnality test (scratch from the workspace).
  DiurnalResult diurnal(std::span<const double> counts, double samples_per_day,
                        const DiurnalOptions& opt = {});

  /// Daily-swing classification; value[i] covers time start + i*step.
  SwingResult swing(std::span<const double> counts, util::SimTime start,
                    std::int64_t step, const SwingOptions& opt = {});

  /// Views over the analyzer-owned decomposition buffers.
  struct Decomposition {
    std::span<const double> trend;
    std::span<const double> seasonal;
    std::span<const double> residual;
  };

  /// STL decomposition into the analyzer's persistent buffers.
  Decomposition decompose_stl(std::span<const double> y, const StlOptions& opt);

  /// Classical additive decomposition (the ablation baseline).
  Decomposition decompose_naive(std::span<const double> y, int period);

  /// Z-score normalization with util::TimeSeries::zscore() semantics:
  /// numerically constant series (sd <= 1e-9 * max(1, |mean|)) map to
  /// exact zeros.  `x` may be a view of this analyzer's decomposition
  /// buffers (read fully before the output is written).
  std::span<const double> zscore(std::span<const double> x);

  /// Views over the CUSUM machine's buffers after a full scan.
  struct CusumView {
    std::span<const ChangePoint> changes;
    std::span<const double> g_pos;
    std::span<const double> g_neg;
  };

  /// Two-sided CUSUM over x, reusing the analyzer's machine.  `x` may
  /// view this analyzer's buffers (copied into the machine as pushed).
  CusumView cusum(std::span<const double> x, const CusumOptions& opt = {});

 private:
  Workspace ws_;
  Workspace::Vec trend_;
  Workspace::Vec seasonal_;
  Workspace::Vec residual_;
  Workspace::Vec z_;
  OnlineCusum cusum_;
};

}  // namespace diurnal::analysis
