// FFT-based diurnality test (paper section 2.4, following Quan et al. 2014).
//
// A block is diurnal when a substantial share of the variance of its
// active-address series concentrates at the 24-hour frequency or its
// harmonics.  We evaluate exact bins with Goertzel so any series length
// works, and include one neighboring bin on each side of every harmonic
// to capture the weekly-modulation sidebands of work-week blocks.
#pragma once

#include <span>

#include "analysis/workspace.h"
#include "util/timeseries.h"

namespace diurnal::analysis {

struct DiurnalOptions {
  /// Fraction of total (mean-removed) power that must fall on the
  /// 24-hour frequency and harmonics for the block to count as diurnal.
  double min_power_ratio = 0.3;
  /// Number of harmonics of the daily frequency to include (1 = 24h
  /// only; 4 = 24h, 12h, 8h, 6h as in the deployment configuration).
  int harmonics = 4;
  /// Include +-1 bins around each harmonic (weekly sidebands).
  bool include_sidebands = true;

  /// Duration strictness (paper section 3.2.2: applying "strict
  /// requirements across a longer duration" sheds blocks whose diurnal
  /// activity changed mid-window).  For windows of at least two
  /// segments, diurnality must also hold in most segments individually.
  int segment_days = 14;
  double segment_ratio_factor = 0.7;   ///< per-segment threshold scale
  double min_segment_fraction = 0.85;  ///< segments that must pass
};

struct DiurnalResult {
  bool diurnal = false;
  double power_ratio = 0.0;   ///< diurnal-band power / total AC power
  double total_power = 0.0;   ///< N * variance (Parseval denominator)
  double diurnal_power = 0.0; ///< power attributed to the diurnal band
  int segments = 0;           ///< evaluated duration segments
  int segments_diurnal = 0;   ///< segments individually diurnal
};

/// Tests a regularly sampled active-address series for diurnality.
/// The series step must divide 24 hours; at least two full days of data
/// are required (otherwise the result is non-diurnal).
DiurnalResult test_diurnal(const util::TimeSeries& series,
                           const DiurnalOptions& opt = {});

/// Same test on raw samples with a given number of samples per day.
DiurnalResult test_diurnal(std::span<const double> values, double samples_per_day,
                           const DiurnalOptions& opt = {});

/// Allocation-free variant: the mean-removed window copy is leased from
/// `ws`.  Bit-identical to the overloads above.
DiurnalResult test_diurnal(std::span<const double> values, double samples_per_day,
                           const DiurnalOptions& opt, Workspace& ws);

}  // namespace diurnal::analysis
