// Multi-block counterpart of BlockAnalyzer: runs the analysis chain
// for up to kMaxBatchLanes equal-length block series at once through
// the SoA kernels in analysis/batch.h.
//
// A BatchAnalyzer owns one Workspace plus persistent SoA and row
// buffers, so a warm analyzer processes batch after batch with zero
// steady-state heap traffic — the same contract as BlockAnalyzer, one
// instance per thread.  Every per-lane result is bit-identical to the
// scalar chain on that lane's series (the fleet digest gates on this).
//
// Views returned by trend()/z()/changes() are valid until the next
// run_detection_chain() on this analyzer.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "analysis/batch.h"
#include "analysis/cusum.h"
#include "analysis/diurnal_test.h"
#include "analysis/stl.h"
#include "analysis/workspace.h"

namespace diurnal::analysis {

class BatchAnalyzer {
 public:
  static constexpr std::size_t kMaxLanes = kMaxBatchLanes;

  BatchAnalyzer() = default;
  BatchAnalyzer(const BatchAnalyzer&) = delete;
  BatchAnalyzer& operator=(const BatchAnalyzer&) = delete;

  /// The arena backing this analyzer.
  Workspace& workspace() noexcept { return ws_; }

  /// Runs STL -> z-score(trend) -> CUSUM for every lane.  All series
  /// must share one length n >= 2 * stl.period (callers batch
  /// equal-length blocks; ragged tails are narrower batches).
  void run_detection_chain(std::span<const std::span<const double>> series,
                           const StlOptions& stl, const CusumOptions& cusum);

  /// Lanes loaded by the last run_detection_chain().
  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t samples() const noexcept { return samples_; }

  /// Per-lane contiguous views of the last chain's outputs.
  std::span<const double> trend(std::size_t lane) const noexcept;
  std::span<const double> z(std::size_t lane) const noexcept;
  std::span<const ChangePoint> changes(std::size_t lane) const noexcept;

  /// Batched diurnality test: out[j] receives lane j's result
  /// (out.size() >= series.size()).  Independent of the detection
  /// chain's buffers.
  void diurnal(std::span<const std::span<const double>> series,
               double samples_per_day, const DiurnalOptions& opt,
               std::span<DiurnalResult> out);

 private:
  Workspace ws_;
  Workspace::Vec y_soa_;
  Workspace::Vec trend_soa_;
  Workspace::Vec seasonal_soa_;
  Workspace::Vec residual_soa_;
  Workspace::Vec z_soa_;
  Workspace::Vec trend_rows_;  ///< lane-major: lane j at [j*n, (j+1)*n)
  Workspace::Vec z_rows_;
  std::array<OnlineCusum, kMaxLanes> cusum_;
  std::size_t lanes_ = 0;
  std::size_t samples_ = 0;
};

}  // namespace diurnal::analysis
