// Descriptive statistics shared by the analysis pipeline and the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analysis/workspace.h"

namespace diurnal::analysis {

double mean(std::span<const double> x) noexcept;

/// Population variance (divide by n).
double variance(std::span<const double> x) noexcept;

/// Population standard deviation.
double stddev(std::span<const double> x) noexcept;

/// Median; copies and partially sorts. Returns 0 for empty input.
double median(std::span<const double> x);

/// q-quantile with linear interpolation, q in [0,1].
double quantile(std::span<const double> x, double q);

/// Allocation-free variants: the sort copy is leased from `ws`.
/// Bit-identical to the vector versions.
double median(std::span<const double> x, Workspace& ws);
double quantile(std::span<const double> x, double q, Workspace& ws);

/// The quantile interpolation over an ALREADY SORTED range (what
/// quantile() computes after its sort).  Exposed for kernels that sort
/// workspace buffers in place.
double quantile_sorted(std::span<const double> sorted, double q) noexcept;

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

/// Empirical CDF evaluated at the given thresholds: for each t, the
/// fraction of x <= t.
std::vector<double> ecdf_at(std::span<const double> x,
                            std::span<const double> thresholds);

/// Same into caller storage (out.size() == thresholds.size(); the sort
/// copy is leased from `ws`).  `out` may alias `thresholds`: every
/// threshold is read before its slot is written.
void ecdf_at(std::span<const double> x, std::span<const double> thresholds,
             std::span<double> out, Workspace& ws);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

/// Full empirical CDF (sorted values vs cumulative fraction), thinned to
/// at most `max_points` evenly spaced points.
std::vector<CdfPoint> ecdf(std::span<const double> x, std::size_t max_points = 200);

}  // namespace diurnal::analysis
