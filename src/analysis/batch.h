// Batched (SoA) analysis kernels: the per-block chain evaluated for up
// to 16 blocks at once.
//
// Layout: every SoA buffer interleaves lanes sample-major —
// `soa[i * lanes + j]` is sample i of lane j — so the per-sample lane
// loop `for (j = 0; j < lanes; ++j)` touches contiguous memory and
// autovectorizes.  `lanes` is a runtime width in [1, kMaxBatchLanes];
// ragged tails are just narrow batches.  All lanes of one call share a
// sample count n: callers group equal-length blocks into a batch and
// run leftovers at a smaller width (see core::BatchDetector).
//
// Digest policy: BITWISE-IDENTICAL to the scalar kernels.  Each lane
// replicates the scalar kernel's exact operation order (shared
// quantities like LOESS windows and tricube weights depend only on
// (n, x0, options), never on lane data, so hoisting them changes no
// lane's arithmetic chain), and the AVX2 clone enables AVX2 only —
// never FMA — so no contraction can alter a rounding (analysis/simd.h).
// The golden fleet digest is therefore unchanged by batching; tests and
// bench-smoke enforce bit equality across widths 1..16 and ISA levels.
//
// Kernels dispatch through analysis/simd.h: one baseline clone and, on
// x86, an AVX2 clone compiled from the same source
// (batch_kernels.inc).  Each public entry point below records exactly
// one dispatch, so benches can prove which clone ran.
#pragma once

#include <cstddef>
#include <span>

#include "analysis/diurnal_test.h"
#include "analysis/loess.h"
#include "analysis/stl.h"
#include "analysis/workspace.h"

namespace diurnal::analysis {

/// Widest batch the kernels accept (per-lane accumulators live in
/// fixed stack arrays of this many doubles).
inline constexpr std::size_t kMaxBatchLanes = 16;

/// Interleaves `series` (each n samples) into soa[i * lanes + j].
/// soa must hold n * series.size() doubles.
void soa_gather(std::span<const std::span<const double>> series,
                std::size_t n, double* soa);

/// Extracts lane j of an n-row SoA buffer into contiguous `out` (n
/// doubles).
void soa_scatter_lane(const double* soa, std::size_t lanes, std::size_t n,
                      std::size_t lane, double* out);

/// Batched loess_smooth(): out_soa holds n rows.  rho_soa is nullptr
/// (non-robust) or an n-row SoA of per-lane robustness weights.
void loess_smooth_batch(const double* y_soa, std::size_t lanes, std::size_t n,
                        const LoessOptions& opt, const double* rho_soa,
                        double* out_soa);

/// Batched loess_smooth_extended(): out_soa holds n + 2 rows (positions
/// -1 .. n).
void loess_smooth_extended_batch(const double* y_soa, std::size_t lanes,
                                 std::size_t n, const LoessOptions& opt,
                                 const double* rho_soa, double* out_soa);

/// Batched window-m moving average: writes in_len - m + 1 rows.
void moving_average_batch(const double* in_soa, std::size_t lanes,
                          std::size_t in_len, int m, double* out_soa);

/// Batched Goertzel bin power at `cycles`; out holds `lanes` powers.
void goertzel_power_batch(const double* x_soa, std::size_t lanes,
                          std::size_t n, double cycles, double* out);

/// Batched BlockAnalyzer::zscore(): per-lane mean/stddev with the same
/// constant-series guard (sd <= 1e-9 * max(1, |mean|) maps the lane to
/// exact zeros).  z_soa holds n rows.
void zscore_batch(const double* x_soa, std::size_t lanes, std::size_t n,
                  double* z_soa);

/// Batched stl_decompose(): same contract as the span overload
/// (throws for period < 2 or n < 2 * period; scratch leased from ws;
/// warm workspaces run allocation-free).  trend/seasonal/residual each
/// hold n rows and must not alias y_soa or each other.
void stl_decompose_batch(const double* y_soa, std::size_t lanes,
                         std::size_t n, const StlOptions& opt, Workspace& ws,
                         double* trend_soa, double* seasonal_soa,
                         double* residual_soa);

/// Batched test_diurnal(): out holds `lanes` results, each bit-identical
/// to the scalar test on that lane.
void test_diurnal_batch(const double* x_soa, std::size_t lanes, std::size_t n,
                        double samples_per_day, const DiurnalOptions& opt,
                        Workspace& ws, DiurnalResult* out);

}  // namespace diurnal::analysis
