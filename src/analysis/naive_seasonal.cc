#include "analysis/naive_seasonal.h"

#include <stdexcept>

namespace diurnal::analysis {

void naive_decompose(std::span<const double> y, int period, Workspace& ws,
                     std::span<double> trend, std::span<double> seasonal,
                     std::span<double> residual) {
  const int n = static_cast<int>(y.size());
  if (period < 2) throw std::invalid_argument("naive_decompose: period >= 2");
  if (n < 2 * period) {
    throw std::invalid_argument("naive_decompose: need two periods of data");
  }
  std::fill(trend.begin(), trend.end(), 0.0);
  std::fill(seasonal.begin(), seasonal.end(), 0.0);
  std::fill(residual.begin(), residual.end(), 0.0);

  // Centered moving average of window `period` (2x(period/2)-style for
  // even periods: average of two adjacent windows).
  const int half = period / 2;
  auto window_mean = [&](int lo, int len) {
    double s = 0.0;
    for (int i = lo; i < lo + len; ++i) s += y[static_cast<std::size_t>(i)];
    return s / len;
  };
  int first = half, last = n - 1 - half;
  for (int i = first; i <= last; ++i) {
    if (period % 2 == 1) {
      trend[static_cast<std::size_t>(i)] = window_mean(i - half, period);
    } else {
      const double a = window_mean(i - half, period);
      const double b = window_mean(i - half + 1, period);
      trend[static_cast<std::size_t>(i)] = 0.5 * (a + b);
    }
  }
  if (last < first) {  // degenerate; flat trend
    first = 0;
    last = n - 1;
    const double m = window_mean(0, n);
    for (auto& t : trend) t = m;
  } else {
    for (int i = 0; i < first; ++i) {
      trend[static_cast<std::size_t>(i)] = trend[static_cast<std::size_t>(first)];
    }
    for (int i = last + 1; i < n; ++i) {
      trend[static_cast<std::size_t>(i)] = trend[static_cast<std::size_t>(last)];
    }
  }

  // Per-phase means of the detrended series, re-centered to sum to zero.
  // Counts live in a double lease; they hold exact small integers, so
  // the divisions match the int-count arithmetic bit for bit.
  auto phase_sum = ws.acquire_zero(static_cast<std::size_t>(period));
  auto phase_cnt = ws.acquire_zero(static_cast<std::size_t>(period));
  for (int i = 0; i < n; ++i) {
    phase_sum[static_cast<std::size_t>(i % period)] +=
        y[static_cast<std::size_t>(i)] - trend[static_cast<std::size_t>(i)];
    phase_cnt[static_cast<std::size_t>(i % period)] += 1.0;
  }
  double grand = 0.0;
  for (int ph = 0; ph < period; ++ph) {
    if (phase_cnt[static_cast<std::size_t>(ph)] > 0.0) {
      phase_sum[static_cast<std::size_t>(ph)] /= phase_cnt[static_cast<std::size_t>(ph)];
    }
    grand += phase_sum[static_cast<std::size_t>(ph)];
  }
  grand /= period;
  for (int ph = 0; ph < period; ++ph) phase_sum[static_cast<std::size_t>(ph)] -= grand;

  for (int i = 0; i < n; ++i) {
    seasonal[static_cast<std::size_t>(i)] = phase_sum[static_cast<std::size_t>(i % period)];
    residual[static_cast<std::size_t>(i)] =
        y[static_cast<std::size_t>(i)] - trend[static_cast<std::size_t>(i)] -
        seasonal[static_cast<std::size_t>(i)];
  }
}

NaiveDecomposition naive_decompose(std::span<const double> y, int period) {
  NaiveDecomposition out;
  out.trend.assign(y.size(), 0.0);
  out.seasonal.assign(y.size(), 0.0);
  out.residual.assign(y.size(), 0.0);
  Workspace ws;
  naive_decompose(y, period, ws, out.trend, out.seasonal, out.residual);
  return out;
}

NaiveSeries naive_decompose(const util::TimeSeries& series, int period) {
  const auto d = naive_decompose(series.span(), period);
  return NaiveSeries{
      util::TimeSeries(series.start(), series.step(), d.trend),
      util::TimeSeries(series.start(), series.step(), d.seasonal),
      util::TimeSeries(series.start(), series.step(), d.residual),
  };
}

}  // namespace diurnal::analysis
