#include "analysis/workspace.h"

#include <algorithm>

namespace diurnal::analysis {

Workspace::Lease Workspace::acquire(std::size_t n) {
  Vec* vec;
  if (free_.empty()) {
    slabs_.push_back(std::make_unique<Vec>());
    // Pre-size the free list so the noexcept release() can never need
    // an allocation: it holds at most one entry per slab.
    free_.reserve(slabs_.size());
    vec = slabs_.back().get();
    ++pool_misses_;
  } else {
    vec = free_.back();
    free_.pop_back();
  }
  if (n > vec->capacity()) ++pool_misses_;
  vec->resize(n);  // default-init: no memset of reused storage
  ++outstanding_;
  return Lease(this, vec, n);
}

Workspace::Lease Workspace::acquire_zero(std::size_t n) {
  Lease lease = acquire(n);
  std::fill_n(lease.data(), n, 0.0);
  return lease;
}

std::span<std::complex<double>> Workspace::complex_scratch(std::size_t n) {
  if (n > complex_.capacity()) ++pool_misses_;
  complex_.resize(n);
  return {complex_.data(), n};
}

void Workspace::release(Vec* vec) noexcept {
  free_.push_back(vec);
  --outstanding_;
}

}  // namespace diurnal::analysis
