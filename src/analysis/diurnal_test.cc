#include "analysis/diurnal_test.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/fft.h"
#include "analysis/stats.h"

namespace diurnal::analysis {

DiurnalResult test_diurnal(const util::TimeSeries& series,
                           const DiurnalOptions& opt) {
  const double samples_per_day =
      static_cast<double>(util::kSecondsPerDay) / static_cast<double>(series.step());
  return test_diurnal(series.span(), samples_per_day, opt);
}

namespace {

// Diurnal-band power ratio of a mean-removed window.
double band_ratio(std::span<const double> values, double samples_per_day,
                  const DiurnalOptions& opt, double* total_out,
                  double* band_out, Workspace& ws) {
  const std::size_t n = values.size();
  const double m = mean(values);
  auto lease = ws.acquire(n);
  const std::span<double> x = lease.span();
  for (std::size_t i = 0; i < n; ++i) x[i] = values[i] - m;

  double total = 0.0;
  for (const double v : x) total += v * v;
  const double total_power = static_cast<double>(n) * total;
  if (total_out != nullptr) *total_out = total_power;
  if (band_out != nullptr) *band_out = 0.0;
  if (total_power <= 0.0) return 0.0;

  const double daily_cycles = static_cast<double>(n) / samples_per_day;
  double band = 0.0;
  for (int h = 1; h <= std::max(opt.harmonics, 1); ++h) {
    const double c = daily_cycles * h;
    if (c >= static_cast<double>(n) / 2.0) break;  // beyond Nyquist
    band += goertzel_power(x, c);
    if (opt.include_sidebands && c > 1.5) {
      band += goertzel_power(x, c - 1.0);
      band += goertzel_power(x, c + 1.0);
    }
  }
  // Positive and negative frequency halves carry equal power.
  if (band_out != nullptr) *band_out = 2.0 * band;
  return std::min(1.0, 2.0 * band / total_power);
}

}  // namespace

DiurnalResult test_diurnal(std::span<const double> values,
                           double samples_per_day, const DiurnalOptions& opt) {
  Workspace ws;
  return test_diurnal(values, samples_per_day, opt, ws);
}

DiurnalResult test_diurnal(std::span<const double> values,
                           double samples_per_day, const DiurnalOptions& opt,
                           Workspace& ws) {
  DiurnalResult r;
  const std::size_t n = values.size();
  if (samples_per_day <= 0.0 || n < static_cast<std::size_t>(2 * samples_per_day)) {
    return r;  // need at least two full days
  }
  r.power_ratio = band_ratio(values, samples_per_day, opt, &r.total_power,
                             &r.diurnal_power, ws);
  r.diurnal = r.power_ratio >= opt.min_power_ratio;
  if (!r.diurnal) return r;

  // Duration strictness: over long windows, diurnality must also hold in
  // most segments individually (section 3.2.2's duration effect).
  const std::size_t seg_len = static_cast<std::size_t>(
      std::max(2.0, opt.segment_days * samples_per_day));
  const std::size_t segments = n / seg_len;
  if (segments >= 2) {
    r.segments = static_cast<int>(segments);
    const double seg_threshold = opt.min_power_ratio * opt.segment_ratio_factor;
    for (std::size_t s = 0; s < segments; ++s) {
      const double ratio = band_ratio(values.subspan(s * seg_len, seg_len),
                                      samples_per_day, opt, nullptr, nullptr, ws);
      r.segments_diurnal += ratio >= seg_threshold;
    }
    if (static_cast<double>(r.segments_diurnal) <
        opt.min_segment_fraction * static_cast<double>(segments)) {
      r.diurnal = false;
    }
  }
  return r;
}

}  // namespace diurnal::analysis
