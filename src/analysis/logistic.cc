#include "analysis/logistic.h"

#include <cmath>
#include <stdexcept>

namespace diurnal::analysis {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void LogisticModel::fit(FeatureMatrix features, std::span<const int> labels,
                        const LogisticOptions& opt) {
  if (features.dim == 0 || features.data.size() % features.dim != 0) {
    throw std::invalid_argument("LogisticModel::fit: bad feature matrix");
  }
  const std::size_t n = features.rows();
  const std::size_t d = features.dim;
  if (n == 0 || n != labels.size()) {
    throw std::invalid_argument("LogisticModel::fit: bad training data");
  }

  // Standardize features for stable gradient descent.
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto f = features.row(i);
    for (std::size_t j = 0; j < d; ++j) mean_[j] += f[j];
  }
  for (auto& m : mean_) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto f = features.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const double dv = f[j] - mean_[j];
      var[j] += dv * dv;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(n));
    scale_[j] = sd > 1e-12 ? sd : 1.0;
  }

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> grad(d);
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto f = features.row(i);
      double z = bias_;
      for (std::size_t j = 0; j < d; ++j) {
        z += weights_[j] * (f[j] - mean_[j]) / scale_[j];
      }
      const double err = sigmoid(z) - static_cast<double>(labels[i]);
      for (std::size_t j = 0; j < d; ++j) {
        grad[j] += err * (f[j] - mean_[j]) / scale_[j];
      }
      grad_b += err;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < d; ++j) {
      weights_[j] -= opt.learning_rate * (grad[j] * inv_n + opt.l2 * weights_[j]);
    }
    bias_ -= opt.learning_rate * grad_b * inv_n;
  }
}

void LogisticModel::fit(const std::vector<std::vector<double>>& features,
                        const std::vector<int>& labels,
                        const LogisticOptions& opt) {
  if (features.empty() || features.size() != labels.size()) {
    throw std::invalid_argument("LogisticModel::fit: bad training data");
  }
  const std::size_t d = features[0].size();
  for (const auto& f : features) {
    if (f.size() != d) {
      throw std::invalid_argument("LogisticModel::fit: ragged features");
    }
  }
  std::vector<double> flat;
  flat.reserve(features.size() * d);
  for (const auto& f : features) flat.insert(flat.end(), f.begin(), f.end());
  fit(FeatureMatrix{flat, d}, labels, opt);
}

double LogisticModel::predict_proba(std::span<const double> x) const {
  if (!fitted() || x.size() != weights_.size()) {
    throw std::invalid_argument("LogisticModel::predict_proba: bad input");
  }
  double z = bias_;
  for (std::size_t j = 0; j < weights_.size(); ++j) {
    z += weights_[j] * (x[j] - mean_[j]) / scale_[j];
  }
  return sigmoid(z);
}

bool LogisticModel::predict(std::span<const double> x, double cutoff) const {
  return predict_proba(x) >= cutoff;
}

BinaryMetrics evaluate(const LogisticModel& model, FeatureMatrix features,
                       std::span<const int> labels, double cutoff) {
  BinaryMetrics m;
  const std::size_t n = features.rows();
  for (std::size_t i = 0; i < n; ++i) {
    const bool pred = model.predict(features.row(i), cutoff);
    const bool truth = labels[i] != 0;
    if (pred && truth) ++m.tp;
    else if (pred && !truth) ++m.fp;
    else if (!pred && truth) ++m.fn;
    else ++m.tn;
  }
  return m;
}

BinaryMetrics evaluate(const LogisticModel& model,
                       const std::vector<std::vector<double>>& features,
                       const std::vector<int>& labels, double cutoff) {
  BinaryMetrics m;
  for (std::size_t i = 0; i < features.size(); ++i) {
    const bool pred = model.predict(features[i], cutoff);
    const bool truth = labels[i] != 0;
    if (pred && truth) ++m.tp;
    else if (pred && !truth) ++m.fp;
    else if (!pred && truth) ++m.fn;
    else ++m.tn;
  }
  return m;
}

}  // namespace diurnal::analysis
