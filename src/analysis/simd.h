// Runtime ISA selection for the batched (SoA) analysis kernels.
//
// The batched kernels in analysis/batch.h are compiled twice from one
// source: a baseline clone (the build's default ISA — SSE2 on x86-64)
// and, on x86, an AVX2 clone produced with the `target` attribute so no
// global -mavx2 flag is needed.  This header owns the choice between
// them: a one-time CPUID probe, an environment override
// (DIURNAL_SIMD=generic forces the baseline clone), a test hook to pin
// the level, and per-level dispatch counters so benches can prove the
// fast path actually ran — a machine without AVX2 must fail a speedup
// gate loudly, never fall back silently.
//
// The two clones are bit-identical by construction: each lane's
// arithmetic chain keeps the scalar kernel's operation order, and the
// AVX2 clone enables only AVX2 (never FMA), so no contraction can
// change a rounding.  Vector width only changes how many independent
// lanes advance per instruction.
#pragma once

#include <cstdint>

namespace diurnal::analysis::simd {

/// Which clone of the batched kernels executes.
enum class IsaLevel : int {
  kGeneric = 0,  ///< build-default ISA, autovectorized (SSE2 baseline)
  kAvx2 = 1,     ///< AVX2 clone (x86 only, runtime-detected)
};

/// What the CPU supports (one-time probe, ignores overrides).
IsaLevel detected_level() noexcept;

/// The level the next batched kernel call will dispatch to: the forced
/// level if force_level() is active, else kGeneric when DIURNAL_SIMD is
/// "generic" or "scalar", else detected_level().
IsaLevel active_level() noexcept;

/// Pins the dispatch level (clamped to detected_level(); a machine
/// without AVX2 cannot be forced onto the AVX2 clone).  Test hook and
/// the bench's scalar-frontier mode.
void force_level(IsaLevel level) noexcept;

/// Clears a force_level() pin.
void clear_forced_level() noexcept;

const char* level_name(IsaLevel level) noexcept;

/// Batched-kernel dispatches per level since the last reset.  Counted
/// once per public batched entry point (stl_decompose_batch etc.), not
/// per inner loop.
struct DispatchCounts {
  std::uint64_t generic = 0;
  std::uint64_t avx2 = 0;
  std::uint64_t total() const noexcept { return generic + avx2; }
};

DispatchCounts dispatch_counts() noexcept;
void reset_dispatch_counts() noexcept;

/// Bumps the counter for `level` (called by the batched kernels).
void record_dispatch(IsaLevel level) noexcept;

}  // namespace diurnal::analysis::simd
