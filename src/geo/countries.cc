#include "geo/countries.h"

#include <stdexcept>

namespace diurnal::geo {

std::string_view to_string(Continent c) noexcept {
  switch (c) {
    case Continent::kAsia: return "Asia";
    case Continent::kEurope: return "Europe";
    case Continent::kNorthAmerica: return "North America";
    case Continent::kSouthAmerica: return "South America";
    case Continent::kAfrica: return "Africa";
    case Continent::kOceania: return "Oceania";
  }
  return "?";
}

std::string_view to_string(DstPolicy p) noexcept {
  switch (p) {
    case DstPolicy::kNone: return "none";
    case DstPolicy::kNorthern: return "northern";
    case DstPolicy::kSouthern: return "southern";
  }
  return "?";
}

namespace {

using util::Date;

// Registry entries only set the layers the defaults don't cover:
// adoption CGNAT, network-ops multipliers, DST, holidays, and drift all
// stay at their neutral defaults so the default registry resolves to
// exactly the pre-layer scalar behavior (bitwise-equivalence contract,
// DESIGN §12).  Worlds opt into the richer layers through
// sim::WorldConfig::country_layers overrides.
CountryProfile make(std::string code, std::string name, Continent continent,
                    int utc_offset_hours, std::vector<City> cities,
                    double block_weight, double diurnal_visible_fraction,
                    std::optional<Date> wfh_2020) {
  CountryProfile p;
  p.code = std::move(code);
  p.name = std::move(name);
  p.continent = continent;
  p.demographics.block_weight = block_weight;
  p.demographics.cities = std::move(cities);
  p.adoption.diurnal_visible_fraction = diurnal_visible_fraction;
  p.time_rules.utc_offset_hours = utc_offset_hours;
  p.wfh_2020 = wfh_2020;
  return p;
}

std::vector<CountryProfile> build_registry() {
  std::vector<CountryProfile> v;
  // Weights and diurnal-visible fractions are tuned so the synthetic
  // world reproduces the paper's coverage skew (Figure 7): best coverage
  // in Asia, moderate in Europe/North America, sparse in South America
  // and (except Morocco) Africa.
  v.push_back(make("CN", "China", Continent::kAsia, 8,
                   {{"Wuhan", 30.6, 114.3, 1.0},
                    {"Beijing", 39.9, 116.4, 6.0},
                    {"Shanghai", 31.2, 121.5, 6.5},
                    {"Guangzhou", 23.1, 113.3, 3.0},
                    {"Chengdu", 30.7, 104.1, 2.0}},
                   30.0, 0.55, Date{2020, 1, 23}));
  v.push_back(make("IN", "India", Continent::kAsia, 5,  // +5:30 rounded
                   {{"New Delhi", 28.6, 77.2, 3.0},
                    {"Mumbai", 19.1, 72.9, 2.5},
                    {"Bangalore", 13.0, 77.6, 2.0}},
                   8.0, 0.45, Date{2020, 3, 22}));
  v.push_back(make("JP", "Japan", Continent::kAsia, 9,
                   {{"Tokyo", 35.7, 139.7, 4.0}, {"Osaka", 34.7, 135.5, 2.0}},
                   7.0, 0.35, Date{2020, 4, 7}));
  v.push_back(make("KR", "South Korea", Continent::kAsia, 9,
                   {{"Seoul", 37.6, 127.0, 3.0}}, 4.0, 0.40, Date{2020, 3, 22}));
  v.push_back(make("MY", "Malaysia", Continent::kAsia, 8,
                   {{"Kuala Lumpur", 3.1, 101.7, 2.0}}, 3.0, 0.50,
                   Date{2020, 3, 18}));
  v.push_back(make("HK", "Hong Kong SAR", Continent::kAsia, 8,
                   {{"Hong Kong", 22.3, 114.2, 2.0}}, 2.0, 0.45,
                   Date{2020, 3, 23}));
  v.push_back(make("SG", "Singapore", Continent::kAsia, 8,
                   {{"Singapore", 1.35, 103.8, 1.0}}, 1.5, 0.40,
                   Date{2020, 4, 7}));
  v.push_back(make("TH", "Thailand", Continent::kAsia, 7,
                   {{"Bangkok", 13.8, 100.5, 2.0}}, 2.0, 0.45,
                   Date{2020, 3, 26}));
  v.push_back(make("AE", "United Arab Emirates", Continent::kAsia, 4,
                   {{"Abu Dhabi", 24.5, 54.4, 1.5}, {"Dubai", 25.2, 55.3, 1.5}},
                   1.5, 0.50, Date{2020, 3, 24}));
  v.push_back(make("IR", "Iran", Continent::kAsia, 4,  // +3:30 rounded
                   {{"Tehran", 35.7, 51.4, 2.0}}, 2.0, 0.40,
                   Date{2020, 3, 13}));

  v.push_back(make(
      "RU", "Russia", Continent::kEurope, 3,
      {{"Moscow", 55.8, 37.6, 3.0}, {"St Petersburg", 59.9, 30.3, 1.5}}, 6.0,
      0.50, Date{2020, 3, 30}));
  v.push_back(make("SI", "Slovenia", Continent::kEurope, 1,
                   {{"Ljubljana", 46.1, 14.5, 1.0}}, 1.2, 0.55,
                   Date{2020, 3, 16}));
  v.push_back(make("DE", "Germany", Continent::kEurope, 1,
                   {{"Berlin", 52.5, 13.4, 2.0}, {"Munich", 48.1, 11.6, 1.5}},
                   5.0, 0.18, Date{2020, 3, 22}));
  v.push_back(make(
      "NL", "Netherlands", Continent::kEurope, 1,
      {{"Utrecht", 52.1, 5.1, 1.0}, {"Amsterdam", 52.4, 4.9, 1.5}}, 2.5, 0.18,
      Date{2020, 3, 16}));
  v.push_back(make("FR", "France", Continent::kEurope, 1,
                   {{"Paris", 48.9, 2.35, 2.5}}, 4.0, 0.18, Date{2020, 3, 17}));
  v.push_back(make("GB", "United Kingdom", Continent::kEurope, 0,
                   {{"London", 51.5, -0.13, 2.5}}, 4.0, 0.16,
                   Date{2020, 3, 23}));
  v.push_back(make("IT", "Italy", Continent::kEurope, 1,
                   {{"Milan", 45.5, 9.2, 1.5}, {"Rome", 41.9, 12.5, 1.5}}, 3.5,
                   0.22, Date{2020, 3, 9}));
  v.push_back(make("ES", "Spain", Continent::kEurope, 1,
                   {{"Madrid", 40.4, -3.7, 2.0}}, 3.0, 0.22, Date{2020, 3, 14}));
  v.push_back(make("BE", "Belgium", Continent::kEurope, 1,
                   {{"Brussels", 50.9, 4.35, 1.0}}, 1.5, 0.18,
                   Date{2020, 3, 18}));
  v.push_back(make("PL", "Poland", Continent::kEurope, 1,
                   {{"Warsaw", 52.2, 21.0, 2.0}}, 3.0, 0.45, Date{2020, 3, 25}));

  v.push_back(make("US", "United States", Continent::kNorthAmerica, -8,
                   {{"Los Angeles", 34.05, -118.25, 3.0},
                    {"Washington DC", 38.9, -77.0, 2.0},
                    {"Bloomington IN", 39.2, -86.5, 1.0},
                    {"New York", 40.7, -74.0, 3.0},
                    {"Denver", 39.7, -105.0, 1.0}},
                   12.0, 0.10, Date{2020, 3, 15}));
  v.push_back(make("CA", "Canada", Continent::kNorthAmerica, -5,
                   {{"Toronto", 43.7, -79.4, 2.0}}, 2.5, 0.12,
                   Date{2020, 3, 17}));
  v.push_back(make("MX", "Mexico", Continent::kNorthAmerica, -6,
                   {{"Mexico City", 19.4, -99.1, 2.0}}, 2.0, 0.30,
                   Date{2020, 3, 23}));

  v.push_back(make("BR", "Brazil", Continent::kSouthAmerica, -3,
                   {{"Sao Paulo", -23.6, -46.6, 2.5},
                    {"Florianopolis", -27.6, -48.5, 0.8}},
                   3.5, 0.30, Date{2020, 3, 24}));
  v.push_back(make("VE", "Venezuela", Continent::kSouthAmerica, -4,
                   {{"Caracas", 10.5, -66.9, 1.0}}, 1.0, 0.35,
                   Date{2020, 3, 16}));
  v.push_back(make("AR", "Argentina", Continent::kSouthAmerica, -3,
                   {{"Buenos Aires", -34.6, -58.4, 1.5}}, 1.5, 0.30,
                   Date{2020, 3, 20}));

  v.push_back(make(
      "MA", "Morocco", Continent::kAfrica, 1,
      {{"Casablanca", 33.6, -7.6, 2.0}, {"Rabat", 34.0, -6.8, 1.0}}, 2.5, 0.55,
      Date{2020, 3, 20}));
  v.push_back(make("ZA", "South Africa", Continent::kAfrica, 2,
                   {{"Johannesburg", -26.2, 28.0, 1.5}}, 1.2, 0.25,
                   Date{2020, 3, 27}));
  v.push_back(make("EG", "Egypt", Continent::kAfrica, 2,
                   {{"Cairo", 30.0, 31.2, 1.5}}, 1.2, 0.30, Date{2020, 3, 25}));

  v.push_back(make(
      "AU", "Australia", Continent::kOceania, 10,
      {{"Sydney", -33.9, 151.2, 2.0}, {"Melbourne", -37.8, 145.0, 1.5}}, 2.0,
      0.15, Date{2020, 3, 23}));
  v.push_back(make("NZ", "New Zealand", Continent::kOceania, 12,
                   {{"Auckland", -36.8, 174.8, 1.0}}, 0.6, 0.15,
                   Date{2020, 3, 25}));
  return v;
}

}  // namespace

const std::vector<CountryProfile>& countries() {
  static const std::vector<CountryProfile> registry = build_registry();
  return registry;
}

const CountryProfile& country(std::string_view code) {
  return countries()[country_index(code)];
}

std::size_t country_index(std::string_view code) {
  const auto& all = countries();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].code == code) return i;
  }
  throw std::out_of_range("unknown country code: " + std::string(code));
}

}  // namespace diurnal::geo
