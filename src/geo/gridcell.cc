#include "geo/gridcell.h"

#include <cmath>

namespace diurnal::geo {

GridCell GridCell::of(double latitude, double longitude) noexcept {
  // Normalize longitude into [-180, 180).
  while (longitude >= 180.0) longitude -= 360.0;
  while (longitude < -180.0) longitude += 360.0;
  if (latitude > 89.999) latitude = 89.999;
  if (latitude < -90.0) latitude = -90.0;
  return GridCell{static_cast<std::int16_t>(std::floor(latitude / 2.0)),
                  static_cast<std::int16_t>(std::floor(longitude / 2.0))};
}

std::string GridCell::to_string() const {
  const int la = static_cast<int>(lat());
  const int lo = static_cast<int>(lon());
  std::string out = "(";
  out += std::to_string(std::abs(la));
  out += la >= 0 ? "N" : "S";
  out += ",";
  out += std::to_string(std::abs(lo));
  out += lo >= 0 ? "E" : "W";
  out += ")";
  return out;
}

}  // namespace diurnal::geo
