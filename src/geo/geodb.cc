#include "geo/geodb.h"

#include <algorithm>

#include "util/rng.h"

namespace diurnal::geo {

void GeoDatabase::add(net::BlockId block, GeoRecord record) {
  records_[block] = record;
}

std::optional<GeoRecord> GeoDatabase::lookup(net::BlockId block) const {
  const auto it = records_.find(block);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::optional<GridCell> GeoDatabase::cell_of(net::BlockId block) const {
  const auto rec = lookup(block);
  if (!rec) return std::nullopt;
  return rec->cell();
}

GeoDatabase GeoDatabase::perturbed(double stddev_degrees,
                                   std::uint64_t seed) const {
  GeoDatabase out;
  for (const auto& [block, rec] : records_) {
    util::Xoshiro256 rng(util::derive_seed(seed, block.id()));
    GeoRecord r = rec;
    r.lat = std::clamp(r.lat + rng.normal(0.0, stddev_degrees), -89.9, 89.9);
    r.lon += rng.normal(0.0, stddev_degrees);
    out.add(block, r);
  }
  return out;
}

}  // namespace diurnal::geo
