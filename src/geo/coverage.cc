#include "geo/coverage.h"

namespace diurnal::geo {

CoverageSummary summarize_coverage(const CellCountMap& cells,
                                   std::int64_t observe_threshold,
                                   std::int64_t represent_threshold) {
  CoverageSummary s;
  for (const auto& [cell, c] : cells) {
    (void)cell;
    ++s.cells_total;
    s.cs_blocks_total += c.change_sensitive;
    s.resp_blocks_total += c.responsive;
    if (c.responsive < observe_threshold) {
      ++s.cells_under_observed;
      s.cs_blocks_under_observed += c.change_sensitive;
      continue;
    }
    ++s.cells_observed;
    s.cs_blocks_observed += c.change_sensitive;
    s.resp_blocks_observed += c.responsive;
    if (c.change_sensitive >= represent_threshold) {
      ++s.cells_represented;
      s.cs_blocks_represented += c.change_sensitive;
      s.resp_blocks_represented += c.responsive;
    } else {
      ++s.cells_under_represented;
    }
  }
  return s;
}

std::vector<ThresholdPoint> sweep_thresholds(const CellCountMap& cells,
                                             std::int64_t max_threshold) {
  std::vector<ThresholdPoint> out;
  const double total = static_cast<double>(cells.size());
  for (std::int64_t t = 0; t <= max_threshold; ++t) {
    ThresholdPoint p;
    p.threshold = t;
    if (total > 0) {
      std::int64_t obs = 0, rep = 0;
      for (const auto& [cell, c] : cells) {
        (void)cell;
        if (c.responsive >= t) ++obs;
        if (c.change_sensitive >= t) ++rep;
      }
      p.observed_cell_fraction = obs / total;
      p.represented_cell_fraction = rep / total;
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace diurnal::geo
