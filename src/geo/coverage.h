// Geographic coverage accounting (paper Table 4, Figure 14, Appendix D).
//
// A gridcell is *observed* when it holds at least `observe_threshold`
// ping-responsive blocks, and *represented* when it holds at least
// `represent_threshold` change-sensitive blocks.  Coverage is reported
// both by unique gridcells and block-weighted.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/gridcell.h"

namespace diurnal::geo {

/// Per-gridcell block tallies.
struct CellCounts {
  std::int64_t responsive = 0;        ///< ping-responsive blocks
  std::int64_t change_sensitive = 0;  ///< change-sensitive blocks
};

/// The Table 4 summary.
struct CoverageSummary {
  std::int64_t cells_total = 0;
  std::int64_t cells_under_observed = 0;
  std::int64_t cells_observed = 0;
  std::int64_t cells_under_represented = 0;
  std::int64_t cells_represented = 0;

  std::int64_t cs_blocks_total = 0;
  std::int64_t cs_blocks_under_observed = 0;
  std::int64_t cs_blocks_observed = 0;
  std::int64_t cs_blocks_represented = 0;

  std::int64_t resp_blocks_total = 0;
  std::int64_t resp_blocks_observed = 0;
  std::int64_t resp_blocks_represented = 0;

  /// Fraction of observed cells that are represented (paper: 60%).
  double represented_cell_fraction() const noexcept {
    return cells_observed == 0
               ? 0.0
               : static_cast<double>(cells_represented) / cells_observed;
  }
  /// Block-weighted coverage: change-sensitive blocks in represented
  /// cells (paper: 99.7%).
  double cs_block_fraction() const noexcept {
    return cs_blocks_observed == 0
               ? 0.0
               : static_cast<double>(cs_blocks_represented) / cs_blocks_observed;
  }
  /// Block-weighted coverage: ping-responsive blocks in represented
  /// cells (paper: 98.5%).
  double resp_block_fraction() const noexcept {
    return resp_blocks_observed == 0
               ? 0.0
               : static_cast<double>(resp_blocks_represented) / resp_blocks_observed;
  }
};

using CellCountMap = std::unordered_map<GridCell, CellCounts>;

/// Computes the Table 4 summary from per-cell counts.
CoverageSummary summarize_coverage(const CellCountMap& cells,
                                   std::int64_t observe_threshold = 5,
                                   std::int64_t represent_threshold = 5);

/// One point of the Appendix-D threshold sweep (Figure 14).
struct ThresholdPoint {
  std::int64_t threshold = 0;
  double observed_cell_fraction = 0.0;     ///< cells with >= t responsive blocks
  double represented_cell_fraction = 0.0;  ///< cells with >= t change-sensitive blocks
};

/// Sweeps the observation/representation thresholds 0..max_threshold.
std::vector<ThresholdPoint> sweep_thresholds(const CellCountMap& cells,
                                             std::int64_t max_threshold = 100);

}  // namespace diurnal::geo
