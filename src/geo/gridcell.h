// 2x2-degree geographic gridcells (paper section 2.6): aggregation unit
// chosen so city-level geolocation error does not matter.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace diurnal::geo {

/// A 2x2-degree latitude/longitude cell.  `lat_idx`/`lon_idx` are the
/// floor(coord/2) indices; the cell covers [2*idx, 2*idx + 2).
struct GridCell {
  std::int16_t lat_idx = 0;  ///< [-45, 44]  (latitude / 2)
  std::int16_t lon_idx = 0;  ///< [-90, 89]  (longitude / 2)

  /// Cell containing a coordinate (latitude in [-90,90], longitude
  /// normalized into [-180,180)).
  static GridCell of(double latitude, double longitude) noexcept;

  /// South-west corner of the cell in degrees.
  double lat() const noexcept { return 2.0 * lat_idx; }
  double lon() const noexcept { return 2.0 * lon_idx; }

  /// Center of the cell.
  double center_lat() const noexcept { return lat() + 1.0; }
  double center_lon() const noexcept { return lon() + 1.0; }

  /// Paper-style label, e.g. "(30N,114E)".
  std::string to_string() const;

  friend bool operator==(const GridCell&, const GridCell&) = default;
  friend auto operator<=>(const GridCell&, const GridCell&) = default;
};

}  // namespace diurnal::geo

template <>
struct std::hash<diurnal::geo::GridCell> {
  std::size_t operator()(const diurnal::geo::GridCell& c) const noexcept {
    return std::hash<std::uint32_t>{}(
        (static_cast<std::uint32_t>(static_cast<std::uint16_t>(c.lat_idx)) << 16) |
        static_cast<std::uint16_t>(c.lon_idx));
  }
};
