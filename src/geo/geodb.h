// Block geolocation database (the paper uses Maxmind GeoLite; we build
// the equivalent lookup from the synthetic world, optionally perturbed to
// model city-level geolocation error).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "geo/countries.h"
#include "geo/gridcell.h"
#include "net/ipv4.h"

namespace diurnal::geo {

/// One geolocation record.
struct GeoRecord {
  double lat = 0.0;
  double lon = 0.0;
  std::uint16_t country = 0;  ///< index into countries()

  GridCell cell() const noexcept { return GridCell::of(lat, lon); }
  Continent continent() const { return countries()[country].continent; }
};

/// Maps /24 blocks to locations.  Built once by the world generator
/// (optionally with noise via `perturbed`) and then read-only.
class GeoDatabase {
 public:
  void add(net::BlockId block, GeoRecord record);

  /// Lookup; nullopt for unknown blocks (the paper discards blocks that
  /// fail to geolocate; all sampled blocks in section 3.6 geolocated).
  std::optional<GeoRecord> lookup(net::BlockId block) const;

  /// Gridcell of a block, if known.
  std::optional<GridCell> cell_of(net::BlockId block) const;

  std::size_t size() const noexcept { return records_.size(); }

  /// A copy with Gaussian location noise (degrees of standard deviation)
  /// applied, modeling Maxmind's city-level inaccuracy; deterministic in
  /// `seed`.
  GeoDatabase perturbed(double stddev_degrees, std::uint64_t seed) const;

  const std::unordered_map<net::BlockId, GeoRecord>& records() const noexcept {
    return records_;
  }

 private:
  std::unordered_map<net::BlockId, GeoRecord> records_;
};

}  // namespace diurnal::geo
