// Country and continent registry for the synthetic world.
//
// The paper's coverage analysis (sections 3.5, 4.1) groups blocks by
// country and continent; our world generator draws block locations from
// this registry with weights that mimic the paper's observed skew
// (change-sensitive blocks concentrated in Asia and Eastern Europe,
// always-on NAT hiding most of North America and Western Europe).
//
// Each country is described by a *layer stack* (DESIGN §12) rather than
// a flat struct: demographics (where blocks live and how many), adoption
// (public dynamic IPv4 vs CGNAT), network ops (renumbering cadence and
// outage base rate), time rules (UTC offset, DST policy, recurring
// holidays), and secular drift (multi-year adoption/CGNAT trends).  The
// world generator resolves the stack per country — registry defaults,
// then any `sim::WorldConfig::country_layers` overrides — and every
// block's draws come from the resolved values.  The default registry
// resolves to exactly the pre-layer scalar behavior (all multipliers
// 1.0, CGNAT 0, DST off, no holidays, zero drift), which is what keeps
// the golden fleet digest bitwise-stable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/date.h"

namespace diurnal::geo {

enum class Continent {
  kAsia,
  kEurope,
  kNorthAmerica,
  kSouthAmerica,
  kAfrica,
  kOceania,
};

std::string_view to_string(Continent c) noexcept;

/// A population center blocks can be placed around.
struct City {
  std::string name;
  double lat = 0.0;
  double lon = 0.0;
  double weight = 1.0;  ///< relative share of the country's blocks
};

/// Layer 1 — demographics: how many blocks the country contributes and
/// where they cluster.
struct DemographicsLayer {
  /// Relative share of the world's responsive /24 blocks.
  double block_weight = 1.0;
  std::vector<City> cities;
};

/// Layer 2 — adoption: how the country's access networks expose end
/// hosts.  `diurnal_visible_fraction` is the share of responsive blocks
/// whose hosts sit on public, dynamically used IPv4 (diurnal-visible);
/// the rest hide behind always-on NAT/servers/firewalls.  High in Asia
/// and Eastern Europe, low in North America and Western Europe
/// (section 3.5).  `cgnat_fraction` is the share of *diurnal* blocks a
/// carrier-grade NAT has absorbed by the start of the horizon — those
/// blocks answer only through their always-on gateway and lose their
/// diurnal signature.
struct AdoptionLayer {
  double diurnal_visible_fraction = 0.2;
  double cgnat_fraction = 0.0;
};

/// Layer 3 — network operations: ISP behavior knobs, expressed as
/// multipliers over the world-level base rates so the default (1.0)
/// resolves to exactly the pre-layer behavior.
struct NetworkOpsLayer {
  double renumber_multiplier = 1.0;  ///< scales WorldConfig::renumber_probability
  double outage_multiplier = 1.0;    ///< scales WorldConfig::outage_rate_per_90d
};

/// Daylight-saving rule families.  kNorthern follows the US rule
/// (spring forward the second Sunday of March at 02:00 standard time,
/// fall back the first Sunday of November at 02:00 daylight time);
/// kSouthern is the mirrored southern-hemisphere schedule (DST from the
/// first Sunday of October to the first Sunday of April).
enum class DstPolicy : std::uint8_t {
  kNone,
  kNorthern,
  kSouthern,
};

std::string_view to_string(DstPolicy p) noexcept;

/// A holiday that recurs every year of the horizon (fixed month/day).
struct AnnualHoliday {
  std::string name;
  int month = 1;
  int day = 1;
  int duration_days = 1;
  double adoption = 0.8;             ///< fraction of blocks observing it
  double residual_attendance = 0.2;  ///< workday activity retained
};

/// Layer 4 — time rules: the country's representative clock.
struct TimeRulesLayer {
  int utc_offset_hours = 0;  ///< representative standard-time offset
  DstPolicy dst = DstPolicy::kNone;
  std::vector<AnnualHoliday> holidays;
};

/// Layer 5 — secular drift: multi-year linear trends, in absolute
/// fraction per 365 days.  Adoption drift is applied at the horizon
/// midpoint; CGNAT drift spreads block migrations across the horizon.
struct DriftLayer {
  double adoption_trend_per_year = 0.0;
  double cgnat_trend_per_year = 0.0;
};

/// Static facts about a country used by the world generator, organised
/// as the layer stack the generator resolves per country.
struct CountryProfile {
  std::string code;  ///< ISO-3166-ish two-letter code
  std::string name;
  Continent continent = Continent::kAsia;

  DemographicsLayer demographics;
  AdoptionLayer adoption;
  NetworkOpsLayer network_ops;
  TimeRulesLayer time_rules;
  DriftLayer drift;

  /// Documented start of Covid-19 work-from-home / lockdown in 2020h1
  /// (from the news sources cited in section 3.6), if in-window.
  std::optional<util::Date> wfh_2020;

  int utc_offset_hours() const noexcept { return time_rules.utc_offset_hours; }
};

/// Back-compat alias: most call sites only need the profile type.
using CountryInfo = CountryProfile;

/// The full registry (stable order; index is a compact country id).
const std::vector<CountryProfile>& countries();

/// Looks up by code; throws std::out_of_range for unknown codes.
const CountryProfile& country(std::string_view code);

/// Index of a country code within countries(); throws if unknown.
std::size_t country_index(std::string_view code);

}  // namespace diurnal::geo
