// Country and continent registry for the synthetic world.
//
// The paper's coverage analysis (sections 3.5, 4.1) groups blocks by
// country and continent; our world generator draws block locations from
// this registry with weights that mimic the paper's observed skew
// (change-sensitive blocks concentrated in Asia and Eastern Europe,
// always-on NAT hiding most of North America and Western Europe).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/date.h"

namespace diurnal::geo {

enum class Continent {
  kAsia,
  kEurope,
  kNorthAmerica,
  kSouthAmerica,
  kAfrica,
  kOceania,
};

std::string_view to_string(Continent c) noexcept;

/// A population center blocks can be placed around.
struct City {
  std::string name;
  double lat = 0.0;
  double lon = 0.0;
  double weight = 1.0;  ///< relative share of the country's blocks
};

/// Static facts about a country used by the world generator.
struct CountryInfo {
  std::string code;  ///< ISO-3166-ish two-letter code
  std::string name;
  Continent continent = Continent::kAsia;
  int utc_offset_hours = 0;  ///< representative timezone
  std::vector<City> cities;

  /// Relative share of the world's responsive /24 blocks.
  double block_weight = 1.0;

  /// Fraction of this country's responsive blocks whose end hosts sit on
  /// public, dynamically used IPv4 (diurnal-visible); the rest hide
  /// behind always-on NAT/servers/firewalls.  High in Asia and Eastern
  /// Europe, low in North America and Western Europe (section 3.5).
  double diurnal_visible_fraction = 0.2;

  /// Documented start of Covid-19 work-from-home / lockdown in 2020h1
  /// (from the news sources cited in section 3.6), if in-window.
  std::optional<util::Date> wfh_2020;
};

/// The full registry (stable order; index is a compact country id).
const std::vector<CountryInfo>& countries();

/// Looks up by code; throws std::out_of_range for unknown codes.
const CountryInfo& country(std::string_view code);

/// Index of a country code within countries(); throws if unknown.
std::size_t country_index(std::string_view code);

}  // namespace diurnal::geo
