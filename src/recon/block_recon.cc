#include "recon/block_recon.h"

#include "recon/repair.h"

namespace diurnal::recon {

namespace {

// Probes every observer into scratch.streams (reused, resized in place).
void collect_streams_into(const sim::BlockProfile& block,
                          const BlockObservationConfig& config,
                          probe::ProbeScratch& scratch) {
  const std::size_t n =
      config.observers.size() + (config.additional_observations ? 1 : 0);
  scratch.streams.resize(n);
  for (std::size_t i = 0; i < config.observers.size(); ++i) {
    probe::probe_block_into(block, config.observers[i], config.loss,
                            config.window, config.prober, scratch,
                            scratch.streams[i]);
    if (config.one_loss_repair) one_loss_repair(scratch.streams[i]);
  }
  if (config.additional_observations) {
    probe::ProberConfig extra_cfg = config.prober;
    extra_cfg.kind = probe::ProberKind::kAdditional;
    probe::probe_block_into(block, probe::additional_observer(), config.loss,
                            config.window, extra_cfg, scratch,
                            scratch.streams[n - 1]);
    if (config.one_loss_repair) one_loss_repair(scratch.streams[n - 1]);
  }
}

std::vector<probe::ObservationVec> collect_streams(
    const sim::BlockProfile& block, const BlockObservationConfig& config) {
  auto& scratch = probe::ProbeScratch::local();
  collect_streams_into(block, config, scratch);
  return std::move(scratch.streams);
}

}  // namespace

ReconResult observe_and_reconstruct(const sim::BlockProfile& block,
                                    const BlockObservationConfig& config,
                                    probe::ProbeScratch& scratch) {
  collect_streams_into(block, config, scratch);
  probe::merge_observations_into(scratch.streams, scratch.merged);
  return reconstruct(scratch.merged, block.eb_count, config.window,
                     config.recon);
}

ReconResult observe_and_reconstruct(const sim::BlockProfile& block,
                                    const BlockObservationConfig& config) {
  return observe_and_reconstruct(block, config, probe::ProbeScratch::local());
}

MultiReconResult observe_and_reconstruct_detailed(
    const sim::BlockProfile& block, const BlockObservationConfig& config) {
  MultiReconResult out;
  auto streams = collect_streams(block, config);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const char code = i < config.observers.size() ? config.observers[i].code : 'x';
    out.per_observer.push_back(PerObserverRecon{
        code, reconstruct(streams[i], block.eb_count, config.window,
                          config.recon)});
  }
  auto merged = probe::merge_observations(std::move(streams));
  out.combined = reconstruct(merged, block.eb_count, config.window, config.recon);
  return out;
}

}  // namespace diurnal::recon
