#include "recon/block_recon.h"

#include "recon/repair.h"

namespace diurnal::recon {

namespace {

std::vector<probe::ObservationVec> collect_streams(
    const sim::BlockProfile& block, const BlockObservationConfig& config) {
  std::vector<probe::ObservationVec> streams;
  streams.reserve(config.observers.size() + 1);
  for (const auto& obs : config.observers) {
    auto stream =
        probe::probe_block(block, obs, config.loss, config.window, config.prober);
    if (config.one_loss_repair) one_loss_repair(stream);
    streams.push_back(std::move(stream));
  }
  if (config.additional_observations) {
    probe::ProberConfig extra_cfg = config.prober;
    extra_cfg.kind = probe::ProberKind::kAdditional;
    auto stream = probe::probe_block(block, probe::additional_observer(),
                                     config.loss, config.window, extra_cfg);
    if (config.one_loss_repair) one_loss_repair(stream);
    streams.push_back(std::move(stream));
  }
  return streams;
}

}  // namespace

ReconResult observe_and_reconstruct(const sim::BlockProfile& block,
                                    const BlockObservationConfig& config) {
  auto merged = probe::merge_observations(collect_streams(block, config));
  return reconstruct(merged, block.eb_count, config.window, config.recon);
}

MultiReconResult observe_and_reconstruct_detailed(
    const sim::BlockProfile& block, const BlockObservationConfig& config) {
  MultiReconResult out;
  auto streams = collect_streams(block, config);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const char code = i < config.observers.size() ? config.observers[i].code : 'x';
    out.per_observer.push_back(PerObserverRecon{
        code, reconstruct(streams[i], block.eb_count, config.window,
                          config.recon)});
  }
  auto merged = probe::merge_observations(std::move(streams));
  out.combined = reconstruct(merged, block.eb_count, config.window, config.recon);
  return out;
}

}  // namespace diurnal::recon
