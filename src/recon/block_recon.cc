#include "recon/block_recon.h"

#include "fault/inject.h"
#include "recon/repair.h"
#include "recon/stream.h"

namespace diurnal::recon {

namespace {

char stream_code(const BlockObservationConfig& config, std::size_t i) {
  return i < config.observers.size() ? config.observers[i].code : 'x';
}

// Probes every observer into scratch.streams (reused, resized in place),
// injecting faults before repair (faults happen on the wire, repair is
// an analysis-side decision).  When `info` is non-null it is filled with
// one ObserverStreamInfo per stream.
void collect_streams_into(const sim::BlockProfile& block,
                          const BlockObservationConfig& config,
                          probe::ProbeScratch& scratch,
                          std::vector<fault::ObserverStreamInfo>* info) {
  const std::size_t n =
      config.observers.size() + (config.additional_observations ? 1 : 0);
  scratch.streams.resize(n);
  if (info != nullptr) info->assign(n, {});
  const bool inject = config.faults != nullptr && !config.faults->empty();

  auto finish_stream = [&](std::size_t i, probe::ObservationVec& stream) {
    fault::StreamFaultStats stats;
    if (inject) {
      stats = fault::apply_faults(*config.faults, stream_code(config, i),
                                  config.window, stream);
    }
    if (info != nullptr) {
      auto& si = (*info)[i];
      si.code = stream_code(config, i);
      si.observations = stream.size();
      si.faults = stats;
      if (!stream.empty()) {
        si.first_rel = stream.front().rel_time;
        si.last_rel = stream.back().rel_time;
      }
    }
    if (config.one_loss_repair) one_loss_repair(stream);
  };

  for (std::size_t i = 0; i < config.observers.size(); ++i) {
    probe::probe_block_into(block, config.observers[i], config.loss,
                            config.window, config.prober, scratch,
                            scratch.streams[i]);
    finish_stream(i, scratch.streams[i]);
  }
  if (config.additional_observations) {
    probe::ProberConfig extra_cfg = config.prober;
    extra_cfg.kind = probe::ProberKind::kAdditional;
    probe::probe_block_into(block, probe::additional_observer(), config.loss,
                            config.window, extra_cfg, scratch,
                            scratch.streams[n - 1]);
    finish_stream(n - 1, scratch.streams[n - 1]);
  }
}

std::vector<probe::ObservationVec> collect_streams(
    const sim::BlockProfile& block, const BlockObservationConfig& config) {
  auto& scratch = probe::ProbeScratch::local();
  collect_streams_into(block, config, scratch, nullptr);
  return std::move(scratch.streams);
}

}  // namespace

// The batch entry points run the streaming pipeline start-to-finish:
// there is one pipeline implementation, and a whole-window pass is just
// a stream that ingests everything before finalizing.
ReconResult observe_and_reconstruct(const sim::BlockProfile& block,
                                    const BlockObservationConfig& config,
                                    probe::ProbeScratch& scratch) {
  thread_local BlockStream stream;
  thread_local DegradedReconResult result;
  stream.begin(block, config, scratch);
  stream.finalize(result);
  return std::move(result.recon);
}

ReconResult observe_and_reconstruct(const sim::BlockProfile& block,
                                    const BlockObservationConfig& config) {
  return observe_and_reconstruct(block, config, probe::ProbeScratch::local());
}

void observe_and_reconstruct_degraded(const sim::BlockProfile& block,
                                      const BlockObservationConfig& config,
                                      probe::ProbeScratch& scratch,
                                      DegradedReconResult& out) {
  thread_local BlockStream stream;
  stream.begin(block, config, scratch);
  stream.finalize(out);
}

MultiReconResult observe_and_reconstruct_detailed(
    const sim::BlockProfile& block, const BlockObservationConfig& config) {
  MultiReconResult out;
  auto streams = collect_streams(block, config);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const char code = i < config.observers.size() ? config.observers[i].code : 'x';
    out.per_observer.push_back(PerObserverRecon{
        code, reconstruct(streams[i], block.eb_count, config.window,
                          config.recon)});
  }
  auto merged = probe::merge_observations(std::move(streams));
  out.combined = reconstruct(merged, block.eb_count, config.window, config.recon);
  return out;
}

}  // namespace diurnal::recon
