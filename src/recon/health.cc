#include "recon/health.h"

#include <algorithm>
#include <cmath>

#include "analysis/stats.h"
#include "probe/prober.h"
#include "recon/repair.h"
#include "util/rng.h"

namespace diurnal::recon {

std::vector<ObserverHealth> check_observers(
    const sim::World& world, const std::vector<probe::ObserverSpec>& observers,
    const HealthCheckConfig& config) {
  // Sample responsive blocks deterministically.
  std::vector<const sim::BlockProfile*> sample;
  util::Xoshiro256 rng(config.seed);
  const auto& blocks = world.blocks();
  std::size_t attempts = 0;
  while (static_cast<int>(sample.size()) < config.sample_blocks &&
         attempts < blocks.size() * 4) {
    ++attempts;
    const auto& b = blocks[rng.below(blocks.size())];
    if (b.eb_count >= 8) sample.push_back(&b);
  }

  // Per-(observer, block) reply rates.  A symmetric corruption barely
  // moves an observer's *average* rate (flips cancel near rate 0.5), so
  // health is judged by per-block disagreement with the other sites.
  std::vector<std::vector<double>> rates(
      observers.size(), std::vector<double>(sample.size(), 0.0));
  for (std::size_t o = 0; o < observers.size(); ++o) {
    for (std::size_t bi = 0; bi < sample.size(); ++bi) {
      const auto stream = probe::probe_block(*sample[bi], observers[o],
                                             config.loss, config.window,
                                             probe::ProberConfig{});
      if (stream.empty()) continue;
      std::size_t pos = 0;
      for (const auto& obs : stream) pos += obs.up ? 1 : 0;
      rates[o][bi] =
          static_cast<double>(pos) / static_cast<double>(stream.size());
    }
  }

  std::vector<ObserverHealth> out(observers.size());
  std::vector<double> others;
  for (std::size_t o = 0; o < observers.size(); ++o) {
    double total_dev = 0.0;
    double total_rate = 0.0;
    for (std::size_t bi = 0; bi < sample.size(); ++bi) {
      others.clear();
      for (std::size_t p = 0; p < observers.size(); ++p) {
        if (p != o) others.push_back(rates[p][bi]);
      }
      if (!others.empty()) {
        total_dev += std::abs(rates[o][bi] - analysis::median(others));
      }
      total_rate += rates[o][bi];
    }
    const double n = sample.empty() ? 1.0 : static_cast<double>(sample.size());
    out[o].code = observers[o].code;
    out[o].mean_reply_rate = total_rate / n;
    out[o].deviation = total_dev / n;
    out[o].healthy = out[o].deviation <= config.max_deviation;
  }
  return out;
}

std::vector<probe::ObserverSpec> healthy_observers(
    const sim::World& world, const std::vector<probe::ObserverSpec>& observers,
    const HealthCheckConfig& config) {
  const auto health = check_observers(world, observers, config);
  std::vector<probe::ObserverSpec> out;
  for (std::size_t i = 0; i < observers.size(); ++i) {
    if (health[i].healthy) out.push_back(observers[i]);
  }
  return out;
}

}  // namespace diurnal::recon
