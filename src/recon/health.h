// Observer-health check (paper section 2.7): analyze each observer
// independently and compare results across sites.  This is the test
// that exposed the hardware problems at sites c and g in 2020 and
// prompted their removal from the 2020 analyses.
#pragma once

#include <vector>

#include "probe/loss_model.h"
#include "probe/observer.h"
#include "probe/prober.h"
#include "sim/world.h"

namespace diurnal::recon {

struct ObserverHealth {
  char code = '?';
  double mean_reply_rate = 0.0;  ///< across the sampled blocks
  /// Mean over sampled blocks of |this observer's per-block reply rate -
  /// median of the other observers' rates for the same block|.
  double deviation = 0.0;
  bool healthy = true;
};

struct HealthCheckConfig {
  /// Number of responsive blocks to sample for the cross-comparison.
  int sample_blocks = 60;
  /// An observer whose mean per-block disagreement with the other sites
  /// exceeds this is flagged unhealthy.
  double max_deviation = 0.10;
  probe::ProbeWindow window{};
  probe::LossModel loss{};
  std::uint64_t seed = 7;
};

/// Cross-compares observers over a random sample of responsive blocks
/// and flags outliers.
std::vector<ObserverHealth> check_observers(
    const sim::World& world, const std::vector<probe::ObserverSpec>& observers,
    const HealthCheckConfig& config);

/// Convenience: the healthy subset of `observers`.
std::vector<probe::ObserverSpec> healthy_observers(
    const sim::World& world, const std::vector<probe::ObserverSpec>& observers,
    const HealthCheckConfig& config);

}  // namespace diurnal::recon
