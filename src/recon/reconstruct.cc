#include "recon/reconstruct.h"

#include <algorithm>
#include <array>
#include <limits>

#include "analysis/stats.h"

namespace diurnal::recon {

double ReconResult::fbs_median_seconds() const {
  return analysis::median(fbs_spans_seconds);
}

double ReconResult::fbs_quantile_seconds(double q) const {
  return analysis::quantile(fbs_spans_seconds, q);
}

ReconResult reconstruct(const probe::ObservationVec& merged, int eb_count,
                        probe::ProbeWindow window, const ReconOptions& opt) {
  ReconResult res;
  res.eb_count = eb_count;
  const std::int64_t duration = window.end - window.start;
  if (duration <= 0 || eb_count <= 0) {
    res.counts = util::TimeSeries(window.start, std::max<std::int64_t>(opt.sample_step, 1), {});
    return res;
  }

  const std::size_t n_samples =
      static_cast<std::size_t>((duration + opt.sample_step - 1) / opt.sample_step);
  std::vector<double> samples(n_samples, 0.0);

  // Per-address state: -1 unknown, 0 down, 1 up.
  std::array<std::int8_t, 256> state{};
  std::array<std::int64_t, 256> last_seen{};
  state.fill(-1);
  last_seen.fill(-1);

  int active = 0;
  int observed = 0;
  std::size_t positives = 0;
  std::size_t next_sample = 0;

  // Effective-coverage tracking: a sample is fresh when some observation
  // (reply or not — coverage is about measurement, not activity) landed
  // within the trailing stale_horizon; observation-free spans longer
  // than the horizon are recorded as gaps.
  std::int64_t last_obs_rel = std::numeric_limits<std::int64_t>::min() / 2;
  std::size_t fresh_samples = 0;
  auto note_gap = [&](std::int64_t up_to) {
    const std::int64_t from = std::max<std::int64_t>(last_obs_rel, 0);
    if (up_to - from > opt.stale_horizon) {
      res.gaps.push_back(
          CoverageGap{window.start + from, window.start + up_to});
    }
    res.max_gap_seconds =
        std::max(res.max_gap_seconds, static_cast<double>(up_to - from));
  };

  // Full-cover tracking: pass_epoch[a] is the cover pass that last
  // touched address a; when a pass has touched all of E(b), its duration
  // is one full-block-scan span and the next pass begins.
  std::array<std::uint32_t, 256> pass_epoch{};
  std::uint32_t pass = 1;
  int pass_seen = 0;
  std::int64_t pass_start = 0;

  auto emit_until = [&](std::int64_t rel_time) {
    while (next_sample < n_samples &&
           static_cast<std::int64_t>(next_sample) * opt.sample_step <= rel_time) {
      samples[next_sample] = static_cast<double>(active);
      res.max_active = std::max(res.max_active, samples[next_sample]);
      if (static_cast<std::int64_t>(next_sample) * opt.sample_step -
              last_obs_rel <=
          opt.stale_horizon) {
        ++fresh_samples;
      }
      ++next_sample;
    }
  };

  for (const auto& obs : merged) {
    const auto rel = static_cast<std::int64_t>(obs.rel_time);
    emit_until(rel - 1);
    note_gap(rel);
    last_obs_rel = rel;
    const std::size_t a = obs.addr;
    if (a >= static_cast<std::size_t>(eb_count)) continue;
    if (state[a] == -1) ++observed;
    const std::int8_t now = obs.up ? 1 : 0;
    if (state[a] == 1 && now == 0) --active;
    if (state[a] != 1 && now == 1) ++active;
    state[a] = now;
    last_seen[a] = rel;
    if (obs.up) ++positives;
    if (pass_epoch[a] != pass) {
      pass_epoch[a] = pass;
      if (++pass_seen == eb_count) {
        res.fbs_spans_seconds.push_back(static_cast<double>(rel - pass_start));
        ++pass;
        pass_seen = 0;
        pass_start = rel;
      }
    }
  }
  emit_until(duration);
  note_gap(duration);
  res.evidence_fraction =
      n_samples == 0 ? 0.0
                     : static_cast<double>(fresh_samples) /
                           static_cast<double>(n_samples);

  res.observations = merged.size();
  res.observed_targets = observed;
  res.responsive = positives > 0;
  res.mean_reply_rate =
      merged.empty() ? 0.0
                     : static_cast<double>(positives) /
                           static_cast<double>(merged.size());
  res.counts = util::TimeSeries(window.start, opt.sample_step, std::move(samples));
  return res;
}

}  // namespace diurnal::recon
