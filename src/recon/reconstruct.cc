#include "recon/reconstruct.h"

#include <algorithm>
#include <array>
#include <limits>

#include "analysis/stats.h"

namespace diurnal::recon {

double ReconResult::fbs_median_seconds() const {
  return analysis::median(fbs_spans_seconds);
}

double ReconResult::fbs_quantile_seconds(double q) const {
  return analysis::quantile(fbs_spans_seconds, q);
}

void BlockReconState::begin(int eb_count, probe::ProbeWindow window,
                            const ReconOptions& opt) {
  opt_ = opt;
  window_ = window;
  eb_count_ = eb_count;
  duration_ = window.end - window.start;
  degenerate_ = duration_ <= 0 || eb_count <= 0;
  n_samples_ =
      degenerate_ ? 0
                  : static_cast<std::size_t>(
                        (duration_ + opt.sample_step - 1) / opt.sample_step);
  samples_.assign(n_samples_, 0.0);
  bound_ = {};
  // Per-address state: -1 unknown, 0 down, 1 up.
  state_.fill(-1);
  last_seen_.fill(-1);
  active_ = 0;
  observed_ = 0;
  positives_ = 0;
  next_sample_ = 0;
  // Effective-coverage tracking: a sample is fresh when some observation
  // (reply or not — coverage is about measurement, not activity) landed
  // within the trailing stale_horizon; observation-free spans longer
  // than the horizon are recorded as gaps.
  last_obs_rel_ = std::numeric_limits<std::int64_t>::min() / 2;
  fresh_samples_ = 0;
  max_active_ = 0.0;
  max_gap_seconds_ = 0.0;
  gaps_.clear();
  // Full-cover tracking: pass_epoch_[a] is the cover pass that last
  // touched address a; when a pass has touched all of E(b), its
  // duration is one full-block-scan span and the next pass begins.
  pass_epoch_.fill(0);
  pass_ = 1;
  pass_seen_ = 0;
  pass_start_ = 0;
  fbs_spans_.clear();
  observations_ = 0;
}

void BlockReconState::finalize(ReconResult& out) {
  out = ReconResult{};
  out.eb_count = eb_count_;
  if (degenerate_) {
    out.counts = util::TimeSeries(
        window_.start, std::max<std::int64_t>(opt_.sample_step, 1), {});
    return;
  }
  emit_until(duration_);
  note_gap(duration_);
  out.evidence_fraction =
      n_samples_ == 0 ? 0.0
                      : static_cast<double>(fresh_samples_) /
                            static_cast<double>(n_samples_);
  out.observations = observations_;
  out.observed_targets = observed_;
  out.responsive = positives_ > 0;
  out.mean_reply_rate =
      observations_ == 0 ? 0.0
                         : static_cast<double>(positives_) /
                               static_cast<double>(observations_);
  out.max_active = max_active_;
  out.max_gap_seconds = max_gap_seconds_;
  out.gaps = std::move(gaps_);
  out.fbs_spans_seconds = std::move(fbs_spans_);
  if (bound_.empty()) {
    out.counts =
        util::TimeSeries(window_.start, opt_.sample_step, std::move(samples_));
  } else {
    // Bound output stays in the external buffer; the legacy result gets
    // a copy so both views agree.
    out.counts = util::TimeSeries(
        window_.start, opt_.sample_step,
        std::vector<double>(bound_.begin(), bound_.begin() + n_samples_));
  }
}

void BlockReconState::finalize_stats(ReconStats& out) {
  out.eb_count = eb_count_;
  out.start = window_.start;
  out.step = std::max<std::int64_t>(opt_.sample_step, 1);
  out.len = 0;
  out.responsive = false;
  out.mean_reply_rate = 0.0;
  out.observations = 0;
  out.observed_targets = 0;
  out.max_active = 0.0;
  out.evidence_fraction = 0.0;
  out.max_gap_seconds = 0.0;
  out.gaps.clear();
  out.fbs_spans_seconds.clear();
  if (degenerate_) return;
  emit_until(duration_);
  note_gap(duration_);
  out.step = opt_.sample_step;
  out.len = n_samples_;
  out.evidence_fraction =
      n_samples_ == 0 ? 0.0
                      : static_cast<double>(fresh_samples_) /
                            static_cast<double>(n_samples_);
  out.observations = observations_;
  out.observed_targets = observed_;
  out.responsive = positives_ > 0;
  out.mean_reply_rate =
      observations_ == 0 ? 0.0
                         : static_cast<double>(positives_) /
                               static_cast<double>(observations_);
  out.max_active = max_active_;
  out.max_gap_seconds = max_gap_seconds_;
  // Swap instead of copy: `out` keeps the data, the state inherits the
  // old capacity for the next begin().
  std::swap(out.gaps, gaps_);
  std::swap(out.fbs_spans_seconds, fbs_spans_);
}

void BlockReconState::snapshot_stats(ReconStats& out) const {
  out.eb_count = eb_count_;
  out.start = window_.start;
  out.step = std::max<std::int64_t>(opt_.sample_step, 1);
  out.len = 0;
  out.responsive = false;
  out.mean_reply_rate = 0.0;
  out.observations = 0;
  out.observed_targets = 0;
  out.max_active = 0.0;
  out.evidence_fraction = 0.0;
  out.max_gap_seconds = 0.0;
  out.gaps.clear();
  out.fbs_spans_seconds.clear();
  if (degenerate_) return;
  // Replays what finalize() would compute on a copy truncated to the
  // emitted-sample prefix (snapshot() semantics): emit_until() is a
  // no-op on the truncated copy, so only the trailing note_gap() and
  // the evidence denominator change.
  const std::size_t len = next_sample_;
  const std::int64_t duration =
      static_cast<std::int64_t>(len) * opt_.sample_step;
  out.step = opt_.sample_step;
  out.len = len;
  out.evidence_fraction = len == 0 ? 0.0
                                   : static_cast<double>(fresh_samples_) /
                                         static_cast<double>(len);
  out.observations = observations_;
  out.observed_targets = observed_;
  out.responsive = positives_ > 0;
  out.mean_reply_rate =
      observations_ == 0 ? 0.0
                         : static_cast<double>(positives_) /
                               static_cast<double>(observations_);
  out.max_active = max_active_;
  out.fbs_spans_seconds.assign(fbs_spans_.begin(), fbs_spans_.end());
  out.gaps.assign(gaps_.begin(), gaps_.end());
  const std::int64_t from = std::max<std::int64_t>(last_obs_rel_, 0);
  if (duration - from > opt_.stale_horizon) {
    out.gaps.push_back(
        CoverageGap{window_.start + from, window_.start + duration});
  }
  out.max_gap_seconds =
      std::max(max_gap_seconds_, static_cast<double>(duration - from));
}

void BlockReconState::snapshot(ReconResult& out) const {
  BlockReconState copy = *this;
  copy.n_samples_ = copy.next_sample_;
  copy.duration_ = static_cast<std::int64_t>(copy.next_sample_) *
                   copy.opt_.sample_step;
  copy.samples_.resize(copy.n_samples_);
  copy.finalize(out);
}

void BlockReconState::save(util::StateWriter& w) const {
  // Arguments-derived fields travel only as restore-time checks.
  w.i64(eb_count_);
  w.u64(n_samples_);
  for (const std::int8_t s : state_) w.u8(static_cast<std::uint8_t>(s));
  for (const std::int64_t t : last_seen_) w.i64(t);
  w.i64(active_);
  w.i64(observed_);
  w.u64(positives_);
  w.u64(next_sample_);
  w.i64(last_obs_rel_);
  w.u64(fresh_samples_);
  w.f64(max_active_);
  w.f64(max_gap_seconds_);
  w.u64(gaps_.size());
  for (const CoverageGap& g : gaps_) {
    w.i64(g.start);
    w.i64(g.end);
  }
  for (const std::uint32_t p : pass_epoch_) w.u32(p);
  w.u32(pass_);
  w.i64(pass_seen_);
  w.i64(pass_start_);
  w.f64_span(fbs_spans_);
  w.u64(observations_);
  // The emitted-sample prefix is part of the state: a restored machine
  // must read back exactly the samples the saved one had written,
  // whether they live in the owned buffer or a bound store row.
  w.f64_span(series_view().first(next_sample_));
}

void BlockReconState::restore(util::StateReader& r) {
  if (r.i64() != eb_count_ || r.u64() != n_samples_) {
    throw util::StateError(util::StateErrorKind::kBadValue,
                           "recon state was saved for a different block");
  }
  for (std::int8_t& s : state_) s = static_cast<std::int8_t>(r.u8());
  for (std::int64_t& t : last_seen_) t = r.i64();
  active_ = static_cast<int>(r.i64());
  observed_ = static_cast<int>(r.i64());
  positives_ = r.u64();
  next_sample_ = r.u64();
  if (next_sample_ > n_samples_) {
    throw util::StateError(util::StateErrorKind::kBadValue,
                           "emitted prefix exceeds the sample capacity");
  }
  last_obs_rel_ = r.i64();
  fresh_samples_ = r.u64();
  max_active_ = r.f64();
  max_gap_seconds_ = r.f64();
  const std::uint64_t n_gaps = r.u64();
  gaps_.clear();
  for (std::uint64_t i = 0; i < n_gaps; ++i) {
    CoverageGap g;
    g.start = r.i64();
    g.end = r.i64();
    gaps_.push_back(g);
  }
  for (std::uint32_t& p : pass_epoch_) p = r.u32();
  pass_ = r.u32();
  pass_seen_ = static_cast<int>(r.i64());
  pass_start_ = r.i64();
  r.f64_span(fbs_spans_);
  observations_ = r.u64();
  double* const dst = bound_.empty() ? samples_.data() : bound_.data();
  r.f64_span_into(std::span<double>(dst, next_sample_));
}

ReconResult reconstruct(const probe::ObservationVec& merged, int eb_count,
                        probe::ProbeWindow window, const ReconOptions& opt) {
  BlockReconState state;
  state.begin(eb_count, window, opt);
  for (const auto& obs : merged) state.push(obs);
  ReconResult res;
  state.finalize(res);
  return res;
}

}  // namespace diurnal::recon
