// Per-block streaming pipeline: the staged, resumable composition of
// probe -> fault injection -> 1-loss repair -> merge -> reconstruct
// that ingests observation rounds incrementally instead of re-running
// whole-window passes.
//
// Equivalence invariant (the engine's contract): feeding the full
// window through any sequence of advance_to() calls and finalizing is
// byte-identical to the batch per-stage pass, because every stage is an
// explicit state machine over the same sequential semantics —
//   * probing is causal (RoundProberState), so round slices concatenate
//     exactly;
//   * fault injection is a stateless hash of time plus an explicit
//     truncation carry (FaultCarry);
//   * 1-loss repair holds mutable observations until rescanned
//     (StreamRepair's release frontier) and never revises released
//     ones;
//   * the k-way merge pops an observation only once no other stream can
//     still produce one ordering before it (per-stream watermarks from
//     the prober's next-round time, through the skew transform);
//   * reconstruction emits samples as an idempotent prefix
//     (BlockReconState).
#pragma once

#include <span>

#include "fault/inject.h"
#include "probe/prober.h"
#include "recon/block_recon.h"
#include "recon/repair.h"
#include "recon/reconstruct.h"
#include "sim/block_profile.h"

namespace diurnal::recon {

/// Read-only mid-stream health view: the stable counters a concurrent
/// epoch snapshot copies out of a live pass (core::SnapshotServer).
/// Pure reads of already-published values — no state machine is
/// touched, so taking one between advances is free.
struct StreamHealth {
  std::size_t delivered = 0;     ///< post-fault observations delivered
  std::size_t emitted = 0;       ///< stable reconstructed samples
  std::size_t observations = 0;  ///< observations folded into the recon
  int observers = 0;             ///< observer streams in the pass
};

class BlockStream {
 public:
  /// Re-initializes for one block, reusing internal buffers.  `config`
  /// and `scratch` are borrowed for the lifetime of this pass.
  ///
  /// classify_end != 0 selects union-window mode: one observation pass
  /// over config.window also maintains a second reconstruction over
  /// [window.start, classify_end), finalized by finalize_classify().
  /// Requires window.start < classify_end <= window.end and a fault
  /// plan without skew specs (retiming drops depend on the window
  /// span, so a sliced stream would diverge from a dedicated
  /// classification pass).
  void begin(const sim::BlockProfile& block,
             const BlockObservationConfig& config, probe::ProbeScratch& scratch,
             util::SimTime classify_end = 0);

  /// Redirects the detection-window reconstruction's samples into an
  /// external buffer (a core::SeriesStore row).  Call right after
  /// begin(); the buffer must outlive the pass.
  void bind_series(std::span<double> out) { recon_.bind_output(out); }

  /// The detection-window sample buffer (bound row or internal); only
  /// the emitted prefix is meaningful before finalize.
  std::span<const double> series() const noexcept {
    return recon_.series_view();
  }
  /// Union-window mode: the classification-window sample buffer.
  std::span<const double> classify_series() const noexcept {
    return classify_recon_.series_view();
  }

  /// Ingests every probing round starting before min(until, window
  /// end) across all observers, then releases merged observations to
  /// the reconstruction(s) as far as the repair lookahead and merge
  /// watermarks allow.  Monotone in `until`.
  void advance_to(util::SimTime until);

  /// Rebinds the probing scratch.  Long-lived streams advanced from a
  /// worker pool share per-worker scratch (its caches are keyed, so
  /// interleaving blocks is safe); rebind before each advance.
  void set_scratch(probe::ProbeScratch& scratch) noexcept {
    scratch_ = &scratch;
  }

  /// Union-window mode only: produces the classification-window result,
  /// byte-identical to a dedicated batch pass over [window.start,
  /// classify_end).  Must be called when advance_to(classify_end) has
  /// run and before any later advance (so the ingested rounds are
  /// exactly the classification window's).  Held/pending observations
  /// are drained into the classification recon as end-of-stream — the
  /// hold-until-rescanned carryover the detection stream keeps pending.
  void finalize_classify(DegradedReconResult& out);

  /// finalize_classify() with the series left in place: statistics go
  /// to `out`, samples stay readable via classify_series().
  void finalize_classify_stats(DegradedReconStats& out);

  /// Drains everything (remaining rounds, held repairs, pending merge
  /// heads) and produces the full-window result.
  void finalize(DegradedReconResult& out);

  /// finalize() with the series left in place (bound store row or the
  /// internal buffer, readable via series()).
  void finalize_stats(DegradedReconStats& out);

  /// Post-fault observations delivered by all observers so far.
  std::size_t delivered_observations() const noexcept { return delivered_; }

  /// Serializes the whole resumable pass: every observer stream's
  /// prober/fault/repair state, its pending observation buffer and the
  /// merge cursors, plus both reconstructions.  Config-derived setup
  /// (observer specs, prober configs, skew resolutions) is not written.
  void save(util::StateWriter& w) const;
  /// Restore contract: call begin() with the identical block, config
  /// and classify_end (and bind_series() if the original was bound),
  /// then restore().  Afterwards any advance/finalize schedule is
  /// bitwise-identical to continuing the saved stream.  Throws
  /// util::StateError on a corrupt or mismatched image.
  void restore(util::StateReader& r);

  /// Heap bytes this stream holds beyond sizeof(*this): per-observer
  /// observation buffers plus both reconstructions' buffers.  A shard
  /// worker's steady-state footprint is this plus its ProbeScratch —
  /// the number bench_shard reports per resident stream.
  std::size_t memory_bytes() const noexcept;
  /// The detection-window reconstruction state (stable emitted-sample
  /// prefix; provisional epoch analyses read this).
  const BlockReconState& recon_state() const noexcept { return recon_; }
  /// Mid-stream health counters (see StreamHealth).
  StreamHealth health() const noexcept {
    return StreamHealth{delivered_, recon_.emitted(), recon_.observations(),
                        static_cast<int>(streams_.size())};
  }

 private:
  struct Stream {
    char code = '?';
    probe::ObserverSpec spec{};
    probe::ProberConfig prober{};
    probe::RoundProberState state{};
    fault::FaultCarry carry{};
    fault::StreamFaultStats stats{};
    fault::SkewResolution skew{};
    StreamRepair repair;
    /// Post-fault observations not yet compacted away; buf[0] is
    /// absolute stream position `base`.
    probe::ObservationVec buf;
    std::size_t base = 0;
    std::size_t released = 0;  ///< absolute repair frontier
    std::size_t consumed = 0;  ///< absolute count fed to the merge
    std::size_t delivered = 0;
    std::uint32_t first_rel = 0;
    std::uint32_t last_rel = 0;
  };

  void pump();
  void drain_classify_tail();
  void fill_observers(std::vector<fault::ObserverStreamInfo>& out) const;

  const sim::BlockProfile* block_ = nullptr;
  const BlockObservationConfig* config_ = nullptr;
  probe::ProbeScratch* scratch_ = nullptr;
  bool inject_ = false;
  util::SimTime classify_end_ = 0;
  bool classify_pending_ = false;
  std::vector<Stream> streams_;
  BlockReconState recon_;           ///< full (detection) window
  BlockReconState classify_recon_;  ///< union-window mode only
  std::size_t delivered_ = 0;
};

}  // namespace diurnal::recon
