// Incremental address reconstruction (paper section 2.3, Figure 2).
//
// Observations arrive incrementally; each address holds its last
// observed state until rescanned.  The reconstructor emits a regularly
// sampled active-address count series, tracks full-block-scan (FBS)
// spans for section 3.1's refresh-rate analysis, and reports reply-rate
// statistics used by the loss study in section 3.3.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "probe/prober.h"
#include "util/state_io.h"
#include "util/timeseries.h"

namespace diurnal::recon {

struct ReconOptions {
  /// Output sampling interval for the count series (the fleet uses
  /// hourly; single-block case studies use per-round).
  std::int64_t sample_step = 3600;
  /// Effective-coverage horizon (paper section 2.8: the additional
  /// observer guarantees a 6-hour full-block refresh).  A sample with no
  /// observation in the trailing horizon is stale; spans with no
  /// observations longer than this are recorded as coverage gaps.
  std::int64_t stale_horizon = 6 * util::kSecondsPerHour;
};

/// A span of the window with no observations at all (absolute times):
/// the reconstruction holds stale state throughout, so anything inferred
/// from it rests on no fresh evidence.
struct CoverageGap {
  util::SimTime start = 0;
  util::SimTime end = 0;
};

struct ReconResult {
  util::TimeSeries counts;           ///< active-address estimate over time
  bool responsive = false;           ///< any positive reply in the window
  double mean_reply_rate = 0.0;      ///< positive / total observations
  std::size_t observations = 0;
  int eb_count = 0;
  int observed_targets = 0;          ///< distinct addresses ever observed
  double max_active = 0.0;

  /// Full-block-scan spans: the durations of successive complete covers
  /// of E(b) (each span is the time the merged observers took to touch
  /// every target once).  This is the quantity of Figure 3.
  std::vector<double> fbs_spans_seconds;

  /// Effective coverage (degraded-mode accounting): fraction of count
  /// samples with an observation inside the staleness horizon, the
  /// longest observation-free span, and every observation-free span
  /// longer than the horizon.  A healthy merged fleet probes every
  /// round, so evidence_fraction sits at ~1 with no gaps; when observers
  /// go dark the gaps say exactly which stretches of the series are
  /// held-over state rather than measurement.
  double evidence_fraction = 0.0;
  double max_gap_seconds = 0.0;
  std::vector<CoverageGap> gaps;

  double fbs_median_seconds() const;
  double fbs_quantile_seconds(double q) const;
};

/// ReconResult minus the sample storage: every statistic of a
/// reconstruction plus the (start, step, len) geometry of its series.
/// Used with externally bound sample storage (core::SeriesStore rows),
/// where the series lives in the store and only the numbers travel.
/// Reusable across blocks — gaps/fbs capacity is recycled.
struct ReconStats {
  util::SimTime start = 0;   ///< series start time
  std::int64_t step = 1;     ///< series sampling step (>= 1)
  std::size_t len = 0;       ///< samples in the series
  bool responsive = false;
  double mean_reply_rate = 0.0;
  std::size_t observations = 0;
  int eb_count = 0;
  int observed_targets = 0;
  double max_active = 0.0;
  std::vector<double> fbs_spans_seconds;
  double evidence_fraction = 0.0;
  double max_gap_seconds = 0.0;
  std::vector<CoverageGap> gaps;
};

/// Resumable reconstruction state machine: the whole-window
/// reconstruct() loop carved into begin / push / finalize so the
/// streaming pipeline can feed merged observations as they clear the
/// repair lookahead and still finalize to the byte-identical
/// ReconResult.  Sample emission is an idempotent prefix — a sample is
/// written the moment the stream passes it, never revised — so the
/// emitted prefix of samples() is stable regardless of how the pushes
/// were chunked.  Copyable by design (value members only).
class BlockReconState {
 public:
  /// Re-initializes for one block, reusing the sample buffer.
  void begin(int eb_count, probe::ProbeWindow window,
             const ReconOptions& opt = {});

  /// Redirects sample emission into an external buffer (a
  /// core::SeriesStore row).  Call immediately after begin(); `out`
  /// must outlive the state and hold at least emitted-capacity()
  /// samples (the store's stride is sized for the window).  The bound
  /// prefix is zero-filled here, matching begin()'s own buffer.
  void bind_output(std::span<double> out) {
    bound_ = out;
    std::fill_n(bound_.begin(), n_samples_, 0.0);
  }

  /// The full sample buffer for this block (owned or bound).  Only the
  /// emitted() prefix is meaningful mid-stream; after finalize_stats()
  /// the whole view is.
  std::span<const double> series_view() const noexcept {
    return bound_.empty() ? std::span<const double>(samples_)
                          : std::span<const double>(bound_.data(), n_samples_);
  }

  /// Feeds the next merged observation (rel_time non-decreasing).
  /// Observations pacing past the window end are tolerated, exactly as
  /// in the batch pass.
  void push(const probe::Observation& obs) {
    if (degenerate_) return;
    const auto rel = static_cast<std::int64_t>(obs.rel_time);
    emit_until(rel - 1);
    note_gap(rel);
    last_obs_rel_ = rel;
    ++observations_;
    const std::size_t a = obs.addr;
    if (a >= static_cast<std::size_t>(eb_count_)) return;
    if (state_[a] == -1) ++observed_;
    const std::int8_t now = obs.up ? 1 : 0;
    if (state_[a] == 1 && now == 0) --active_;
    if (state_[a] != 1 && now == 1) ++active_;
    state_[a] = now;
    last_seen_[a] = rel;
    if (obs.up) ++positives_;
    if (pass_epoch_[a] != pass_) {
      pass_epoch_[a] = pass_;
      if (++pass_seen_ == eb_count_) {
        fbs_spans_.push_back(static_cast<double>(rel - pass_start_));
        ++pass_;
        pass_seen_ = 0;
        pass_start_ = rel;
      }
    }
  }

  /// Emits the trailing samples and gap, and moves the result out.
  /// The state is spent afterwards; call begin() to reuse it.
  void finalize(ReconResult& out);

  /// Finalizes a copy truncated to the emitted-sample prefix: the
  /// result's series ends at the last emitted sample and the evidence
  /// denominator matches, so mid-stream consumers (the streaming
  /// engine's provisional screens) see honest statistics instead of a
  /// flat extrapolation to the window end.  The state itself is
  /// untouched.
  void snapshot(ReconResult& out) const;

  /// finalize() without materializing the series: emits the trailing
  /// samples into the owned/bound buffer and fills `out` with the
  /// statistics only (recycling its gaps/fbs capacity).  The series
  /// itself stays where it was written — read it via series_view() or
  /// the bound store row.  The state is spent afterwards.
  void finalize_stats(ReconStats& out);

  /// snapshot() without the series copy: statistics truncated to the
  /// emitted-sample prefix, computed exactly as a truncated finalize
  /// would.  The state is untouched; the emitted prefix of
  /// series_view() is the matching series.
  void snapshot_stats(ReconStats& out) const;

  /// Serializes every mutable field plus the emitted-sample prefix.
  /// Everything begin() derives from its arguments (window geometry,
  /// options, sample capacity) is *not* written — the restore contract
  /// is: call begin() (and bind_output(), if the original was bound)
  /// with identical arguments, then restore().  Checked fields
  /// (eb_count, sample count) guard against restoring into a state
  /// begun with different arguments.
  void save(util::StateWriter& w) const;
  /// Overwrites the mutable state from `r`; the emitted prefix lands in
  /// the current destination (bound row or owned buffer).  After this,
  /// the machine continues exactly where the saved one stopped: pushes,
  /// snapshots and finalize are bitwise-identical to an uninterrupted
  /// run.  Throws util::StateError and leaves the state unusable (call
  /// begin() again) on a corrupt or mismatched image.
  void restore(util::StateReader& r);

  /// Number of samples emitted so far (the stable prefix of samples()).
  std::size_t emitted() const noexcept { return next_sample_; }
  const std::vector<double>& samples() const noexcept { return samples_; }
  std::size_t observations() const noexcept { return observations_; }

  /// Heap bytes held beyond sizeof(*this) — the per-worker residency
  /// accounting the shard scheduler and bench_shard report.
  std::size_t memory_bytes() const noexcept {
    return samples_.capacity() * sizeof(double) +
           gaps_.capacity() * sizeof(CoverageGap) +
           fbs_spans_.capacity() * sizeof(double);
  }

 private:
  void emit_until(std::int64_t rel_time) {
    double* const dst = bound_.empty() ? samples_.data() : bound_.data();
    while (next_sample_ < n_samples_ &&
           static_cast<std::int64_t>(next_sample_) * opt_.sample_step <=
               rel_time) {
      dst[next_sample_] = static_cast<double>(active_);
      max_active_ = std::max(max_active_, dst[next_sample_]);
      if (static_cast<std::int64_t>(next_sample_) * opt_.sample_step -
              last_obs_rel_ <=
          opt_.stale_horizon) {
        ++fresh_samples_;
      }
      ++next_sample_;
    }
  }
  void note_gap(std::int64_t up_to) {
    const std::int64_t from = std::max<std::int64_t>(last_obs_rel_, 0);
    if (up_to - from > opt_.stale_horizon) {
      gaps_.push_back(
          CoverageGap{window_.start + from, window_.start + up_to});
    }
    max_gap_seconds_ =
        std::max(max_gap_seconds_, static_cast<double>(up_to - from));
  }

  ReconOptions opt_{};
  probe::ProbeWindow window_{};
  int eb_count_ = 0;
  bool degenerate_ = true;
  std::int64_t duration_ = 0;
  std::size_t n_samples_ = 0;
  std::vector<double> samples_;
  std::span<double> bound_{};  ///< external output, empty = use samples_
  std::array<std::int8_t, 256> state_{};
  std::array<std::int64_t, 256> last_seen_{};
  int active_ = 0;
  int observed_ = 0;
  std::size_t positives_ = 0;
  std::size_t next_sample_ = 0;
  std::int64_t last_obs_rel_ = std::numeric_limits<std::int64_t>::min() / 2;
  std::size_t fresh_samples_ = 0;
  double max_active_ = 0.0;
  double max_gap_seconds_ = 0.0;
  std::vector<CoverageGap> gaps_;
  std::array<std::uint32_t, 256> pass_epoch_{};
  std::uint32_t pass_ = 1;
  int pass_seen_ = 0;
  std::int64_t pass_start_ = 0;
  std::vector<double> fbs_spans_;
  std::size_t observations_ = 0;
};

/// Reconstructs a block's activity from a merged, time-ordered
/// observation stream.  One full pass of the BlockReconState machine.
ReconResult reconstruct(const probe::ObservationVec& merged, int eb_count,
                        probe::ProbeWindow window, const ReconOptions& opt = {});

}  // namespace diurnal::recon
