// Incremental address reconstruction (paper section 2.3, Figure 2).
//
// Observations arrive incrementally; each address holds its last
// observed state until rescanned.  The reconstructor emits a regularly
// sampled active-address count series, tracks full-block-scan (FBS)
// spans for section 3.1's refresh-rate analysis, and reports reply-rate
// statistics used by the loss study in section 3.3.
#pragma once

#include <cstdint>
#include <vector>

#include "probe/prober.h"
#include "util/timeseries.h"

namespace diurnal::recon {

struct ReconOptions {
  /// Output sampling interval for the count series (the fleet uses
  /// hourly; single-block case studies use per-round).
  std::int64_t sample_step = 3600;
  /// Effective-coverage horizon (paper section 2.8: the additional
  /// observer guarantees a 6-hour full-block refresh).  A sample with no
  /// observation in the trailing horizon is stale; spans with no
  /// observations longer than this are recorded as coverage gaps.
  std::int64_t stale_horizon = 6 * util::kSecondsPerHour;
};

/// A span of the window with no observations at all (absolute times):
/// the reconstruction holds stale state throughout, so anything inferred
/// from it rests on no fresh evidence.
struct CoverageGap {
  util::SimTime start = 0;
  util::SimTime end = 0;
};

struct ReconResult {
  util::TimeSeries counts;           ///< active-address estimate over time
  bool responsive = false;           ///< any positive reply in the window
  double mean_reply_rate = 0.0;      ///< positive / total observations
  std::size_t observations = 0;
  int eb_count = 0;
  int observed_targets = 0;          ///< distinct addresses ever observed
  double max_active = 0.0;

  /// Full-block-scan spans: the durations of successive complete covers
  /// of E(b) (each span is the time the merged observers took to touch
  /// every target once).  This is the quantity of Figure 3.
  std::vector<double> fbs_spans_seconds;

  /// Effective coverage (degraded-mode accounting): fraction of count
  /// samples with an observation inside the staleness horizon, the
  /// longest observation-free span, and every observation-free span
  /// longer than the horizon.  A healthy merged fleet probes every
  /// round, so evidence_fraction sits at ~1 with no gaps; when observers
  /// go dark the gaps say exactly which stretches of the series are
  /// held-over state rather than measurement.
  double evidence_fraction = 0.0;
  double max_gap_seconds = 0.0;
  std::vector<CoverageGap> gaps;

  double fbs_median_seconds() const;
  double fbs_quantile_seconds(double q) const;
};

/// Reconstructs a block's activity from a merged, time-ordered
/// observation stream.
ReconResult reconstruct(const probe::ObservationVec& merged, int eb_count,
                        probe::ProbeWindow window, const ReconOptions& opt = {});

}  // namespace diurnal::recon
