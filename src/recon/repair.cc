#include "recon/repair.h"

#include <array>
#include <cstdint>

namespace diurnal::recon {

RepairStats one_loss_repair(probe::ObservationVec& stream) {
  RepairStats stats;
  stats.observations = stream.size();

  // Per-address indices of the last and second-to-last observations.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::array<std::size_t, 256> last{};
  std::array<std::size_t, 256> prev{};
  last.fill(kNone);
  prev.fill(kNone);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::uint8_t a = stream[i].addr;
    if (stream[i].up && last[a] != kNone && prev[a] != kNone &&
        !stream[last[a]].up && stream[prev[a]].up) {
      stream[last[a]].up = true;  // 101 -> 111
      ++stats.repaired;
    }
    prev[a] = last[a];
    last[a] = i;
  }
  return stats;
}

void StreamRepair::reset() {
  addr_.fill(AddrState{});
  processed_ = 0;
  stats_ = RepairStats{};
}

std::size_t StreamRepair::ingest(probe::ObservationVec& stream,
                                 std::size_t base) {
  const std::size_t end = base + stream.size();
  for (std::size_t i = processed_; i < end; ++i) {
    const probe::Observation& obs = stream[i - base];
    AddrState& st = addr_[obs.addr];
    // Same state machine as one_loss_repair, with the two trailing
    // observations' values cached so released (possibly compacted)
    // entries are never reloaded: flip 101 -> 111 when the rescan
    // arrives positive.
    if (obs.up && st.last != kNone && st.has_prev && !st.last_up &&
        st.prev_up) {
      stream[st.last - base].up = true;
      st.last_up = true;
      ++stats_.repaired;
    }
    st.prev_up = st.last_up;
    st.has_prev = st.last != kNone;
    st.last_up = obs.up;
    st.last = i;
  }
  stats_.observations += end - processed_;
  processed_ = end;

  // Everything below the earliest still-mutable observation is final.
  // A held observation is the latest for its address, a non-reply, and
  // has a positive predecessor — the exact flip target a future rescan
  // could rewrite.
  std::size_t frontier = processed_;
  for (const AddrState& st : addr_) {
    if (st.last != kNone && !st.last_up && st.has_prev && st.prev_up &&
        st.last < frontier) {
      frontier = st.last;
    }
  }
  return frontier;
}

void StreamRepair::save(util::StateWriter& w) const {
  w.u64(processed_);
  w.u64(stats_.observations);
  w.u64(stats_.repaired);
  for (const AddrState& st : addr_) {
    // kNone maps to 0 so untouched addresses cost one varint byte.
    w.u64(st.last == kNone ? 0 : st.last + 1);
    w.u8(static_cast<std::uint8_t>((st.has_prev ? 1 : 0) |
                                   (st.last_up ? 2 : 0) |
                                   (st.prev_up ? 4 : 0)));
  }
}

void StreamRepair::restore(util::StateReader& r) {
  processed_ = r.u64();
  stats_.observations = r.u64();
  stats_.repaired = r.u64();
  for (AddrState& st : addr_) {
    const std::uint64_t last = r.u64();
    st.last = last == 0 ? kNone : static_cast<std::size_t>(last - 1);
    const std::uint8_t flags = r.u8();
    if (flags > 7) {
      throw util::StateError(util::StateErrorKind::kBadValue,
                             "repair flags out of range");
    }
    st.has_prev = (flags & 1) != 0;
    st.last_up = (flags & 2) != 0;
    st.prev_up = (flags & 4) != 0;
  }
}

}  // namespace diurnal::recon
