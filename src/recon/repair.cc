#include "recon/repair.h"

#include <array>
#include <cstdint>

namespace diurnal::recon {

RepairStats one_loss_repair(probe::ObservationVec& stream) {
  RepairStats stats;
  stats.observations = stream.size();

  // Per-address indices of the last and second-to-last observations.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::array<std::size_t, 256> last{};
  std::array<std::size_t, 256> prev{};
  last.fill(kNone);
  prev.fill(kNone);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::uint8_t a = stream[i].addr;
    if (stream[i].up && last[a] != kNone && prev[a] != kNone &&
        !stream[last[a]].up && stream[prev[a]].up) {
      stream[last[a]].up = true;  // 101 -> 111
      ++stats.repaired;
    }
    prev[a] = last[a];
    last[a] = i;
  }
  return stats;
}

void StreamRepair::reset() {
  addr_.fill(AddrState{});
  processed_ = 0;
  stats_ = RepairStats{};
}

std::size_t StreamRepair::ingest(probe::ObservationVec& stream,
                                 std::size_t base) {
  const std::size_t end = base + stream.size();
  for (std::size_t i = processed_; i < end; ++i) {
    const probe::Observation& obs = stream[i - base];
    AddrState& st = addr_[obs.addr];
    // Same state machine as one_loss_repair, with the two trailing
    // observations' values cached so released (possibly compacted)
    // entries are never reloaded: flip 101 -> 111 when the rescan
    // arrives positive.
    if (obs.up && st.last != kNone && st.has_prev && !st.last_up &&
        st.prev_up) {
      stream[st.last - base].up = true;
      st.last_up = true;
      ++stats_.repaired;
    }
    st.prev_up = st.last_up;
    st.has_prev = st.last != kNone;
    st.last_up = obs.up;
    st.last = i;
  }
  stats_.observations += end - processed_;
  processed_ = end;

  // Everything below the earliest still-mutable observation is final.
  // A held observation is the latest for its address, a non-reply, and
  // has a positive predecessor — the exact flip target a future rescan
  // could rewrite.
  std::size_t frontier = processed_;
  for (const AddrState& st : addr_) {
    if (st.last != kNone && !st.last_up && st.has_prev && st.prev_up &&
        st.last < frontier) {
      frontier = st.last;
    }
  }
  return frontier;
}

}  // namespace diurnal::recon
