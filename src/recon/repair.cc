#include "recon/repair.h"

#include <array>
#include <cstdint>

namespace diurnal::recon {

RepairStats one_loss_repair(probe::ObservationVec& stream) {
  RepairStats stats;
  stats.observations = stream.size();

  // Per-address indices of the last and second-to-last observations.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::array<std::size_t, 256> last{};
  std::array<std::size_t, 256> prev{};
  last.fill(kNone);
  prev.fill(kNone);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::uint8_t a = stream[i].addr;
    if (stream[i].up && last[a] != kNone && prev[a] != kNone &&
        !stream[last[a]].up && stream[prev[a]].up) {
      stream[last[a]].up = true;  // 101 -> 111
      ++stats.repaired;
    }
    prev[a] = last[a];
    last[a] = i;
  }
  return stats;
}

}  // namespace diurnal::recon
