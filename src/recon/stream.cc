#include "recon/stream.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace diurnal::recon {

using util::SimTime;

void BlockStream::begin(const sim::BlockProfile& block,
                        const BlockObservationConfig& config,
                        probe::ProbeScratch& scratch, SimTime classify_end) {
  block_ = &block;
  config_ = &config;
  scratch_ = &scratch;
  inject_ = config.faults != nullptr && !config.faults->empty();
  classify_end_ = classify_end;
  classify_pending_ = classify_end != 0;
  assert(!classify_pending_ ||
         (classify_end > config.window.start &&
          classify_end <= config.window.end &&
          (!inject_ || config.faults->skews.empty())));
  delivered_ = 0;

  const std::size_t n =
      config.observers.size() + (config.additional_observations ? 1 : 0);
  streams_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Stream& s = streams_[i];
    const bool extra = i >= config.observers.size();
    s.spec = extra ? probe::additional_observer() : config.observers[i];
    s.code = s.spec.code;
    s.prober = config.prober;
    if (extra) s.prober.kind = probe::ProberKind::kAdditional;
    probe::round_prober_begin(block, s.spec, config.window, s.prober, s.state);
    s.carry = fault::FaultCarry{};
    s.stats = fault::StreamFaultStats{};
    s.skew = inject_ ? fault::resolve_skew(*config.faults, s.code)
                     : fault::SkewResolution{};
    s.repair.reset();
    s.buf.clear();
    s.base = 0;
    s.released = 0;
    s.consumed = 0;
    s.delivered = 0;
    s.first_rel = 0;
    s.last_rel = 0;
  }
  recon_.begin(block.eb_count, config.window, config.recon);
  if (classify_pending_) {
    classify_recon_.begin(
        block.eb_count,
        probe::ProbeWindow{config.window.start, classify_end}, config.recon);
  }
}

void BlockStream::advance_to(SimTime until) {
  assert(!classify_pending_ || until <= classify_end_);
  for (Stream& s : streams_) {
    if (s.state.done) continue;
    const std::size_t old = s.buf.size();
    probe::round_prober_resume(*block_, s.spec, config_->loss, config_->window,
                               s.prober, *scratch_, s.state, until, s.buf);
    if (inject_) {
      const auto st = fault::apply_faults_chunk(*config_->faults, s.code,
                                                config_->window, s.buf, old,
                                                s.carry);
      s.stats.input += st.input;
      s.stats.dropped += st.dropped;
      s.stats.corrupted += st.corrupted;
      s.stats.retimed += st.retimed;
    }
    if (s.buf.size() > old) {
      if (s.delivered == 0) s.first_rel = s.buf[old].rel_time;
      s.last_rel = s.buf.back().rel_time;
      const std::size_t got = s.buf.size() - old;
      s.delivered += got;
      delivered_ += got;
    }
    if (config_->one_loss_repair) {
      s.released = s.repair.ingest(s.buf, s.base);
    } else {
      s.released = s.base + s.buf.size();
    }
  }
  pump();
  // Compact consumed prefixes so the incremental mode's steady-state
  // footprint is the pending lookahead, not the whole window.  The
  // threshold trades memmove amortization against footprint: a fleet
  // holds one stream per (block, observer), so the consumed slack is
  // what dominates resident size in epoch-driven runs.
  for (Stream& s : streams_) {
    const std::size_t done = s.consumed - s.base;
    if (done > 512) {
      s.buf.erase(s.buf.begin(),
                  s.buf.begin() + static_cast<std::ptrdiff_t>(done));
      s.base = s.consumed;
    }
  }
}

void BlockStream::pump() {
  // Pop the globally next observation — order (rel_time, stream index),
  // the batch merge's total order — whenever no stream can still
  // produce one ordering before it.  Each stream's lower bound on
  // anything it may yet yield: its first unconsumed buffered
  // observation (timestamp already final even while its value is held
  // by repair), else its prober's next round start through the skew
  // transform, else +inf once exhausted and drained.
  const SimTime wstart = config_->window.start;
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  for (;;) {
    std::size_t best = streams_.size();
    std::int64_t best_rel = kInf;
    bool best_poppable = false;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const Stream& s = streams_[i];
      std::int64_t rel;
      bool poppable = false;
      if (s.consumed < s.base + s.buf.size()) {
        rel = static_cast<std::int64_t>(
            s.buf[s.consumed - s.base].rel_time);
        poppable = s.consumed < s.released;
      } else if (!s.state.done) {
        rel = std::max<std::int64_t>(
            0, s.skew.transform(s.state.next_round - wstart));
      } else {
        continue;  // exhausted and drained: bound is +inf
      }
      if (rel < best_rel) {
        best_rel = rel;
        best = i;
        best_poppable = poppable;
      }
    }
    if (best == streams_.size() || !best_poppable) return;
    Stream& s = streams_[best];
    const probe::Observation& obs = s.buf[s.consumed - s.base];
    recon_.push(obs);
    if (classify_pending_) classify_recon_.push(obs);
    ++s.consumed;
  }
}

void BlockStream::fill_observers(
    std::vector<fault::ObserverStreamInfo>& out) const {
  out.assign(streams_.size(), {});
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const Stream& s = streams_[i];
    auto& si = out[i];
    si.code = s.code;
    si.observations = s.delivered;
    si.faults = s.stats;
    if (s.delivered > 0) {
      si.first_rel = s.first_rel;
      si.last_rel = s.last_rel;
    }
  }
}

void BlockStream::drain_classify_tail() {
  // Every ingested round starts before classify_end, so each stream's
  // buffered tail already holds its final classification-window values:
  // a repair flip needs a rescan, and any rescan inside the
  // classification window has been ingested and applied.  Draining the
  // tails in merge order is therefore exactly the batch end-of-stream.
  std::vector<std::size_t> cursor(streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    cursor[i] = streams_[i].consumed;
  }
  for (;;) {
    std::size_t best = streams_.size();
    std::uint32_t best_rel = 0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const Stream& s = streams_[i];
      if (cursor[i] >= s.base + s.buf.size()) continue;
      const std::uint32_t rel = s.buf[cursor[i] - s.base].rel_time;
      if (best == streams_.size() || rel < best_rel) {
        best = i;
        best_rel = rel;
      }
    }
    if (best == streams_.size()) break;
    const Stream& s = streams_[best];
    classify_recon_.push(s.buf[cursor[best] - s.base]);
    ++cursor[best];
  }
}

void BlockStream::finalize_classify(DegradedReconResult& out) {
  assert(classify_pending_);
  drain_classify_tail();
  classify_recon_.finalize(out.recon);
  fill_observers(out.observers);
  classify_pending_ = false;
}

void BlockStream::finalize_classify_stats(DegradedReconStats& out) {
  assert(classify_pending_);
  drain_classify_tail();
  classify_recon_.finalize_stats(out.recon);
  fill_observers(out.observers);
  classify_pending_ = false;
}

void BlockStream::finalize(DegradedReconResult& out) {
  advance_to(config_->window.end);
  if (config_->one_loss_repair) {
    for (Stream& s : streams_) s.released = s.repair.finish();
  }
  pump();
  recon_.finalize(out.recon);
  fill_observers(out.observers);
}

void BlockStream::finalize_stats(DegradedReconStats& out) {
  advance_to(config_->window.end);
  if (config_->one_loss_repair) {
    for (Stream& s : streams_) s.released = s.repair.finish();
  }
  pump();
  recon_.finalize_stats(out.recon);
  fill_observers(out.observers);
}

void BlockStream::save(util::StateWriter& w) const {
  w.boolean(classify_pending_);
  w.u64(delivered_);
  w.u64(streams_.size());
  for (const Stream& s : streams_) {
    w.i64(s.state.next_round);
    w.u64(s.state.cursor);
    w.i64(s.state.rounds_since_positive);
    w.boolean(s.state.done);
    w.i64(s.carry.trunc_round);
    w.boolean(s.carry.trunc_fired);
    w.boolean(s.carry.trunc_kept_first);
    w.u64(s.stats.input);
    w.u64(s.stats.dropped);
    w.u64(s.stats.corrupted);
    w.u64(s.stats.retimed);
    s.repair.save(w);
    // The pending buffer: timestamps are non-decreasing, so they
    // delta-encode to ~1 varint byte each.
    w.u64(s.buf.size());
    std::uint32_t prev_rel = 0;
    for (const probe::Observation& obs : s.buf) {
      w.u32(obs.rel_time - prev_rel);
      prev_rel = obs.rel_time;
      w.u8(obs.addr);
      w.boolean(obs.up);
    }
    w.u64(s.base);
    w.u64(s.released);
    w.u64(s.consumed);
    w.u64(s.delivered);
    w.u32(s.first_rel);
    w.u32(s.last_rel);
  }
  recon_.save(w);
  if (classify_pending_) classify_recon_.save(w);
}

void BlockStream::restore(util::StateReader& r) {
  const bool saved_classify_pending = r.boolean();
  // begin() ran in the same mode (classify_end decides); the saved pass
  // may additionally have retired its classification fork already.
  if (saved_classify_pending && !classify_pending_) {
    throw util::StateError(util::StateErrorKind::kBadValue,
                           "stream state was saved in union-window mode");
  }
  delivered_ = r.u64();
  if (r.u64() != streams_.size()) {
    throw util::StateError(util::StateErrorKind::kBadValue,
                           "stream state was saved with a different "
                           "observer set");
  }
  for (Stream& s : streams_) {
    s.state.next_round = r.i64();
    s.state.cursor = r.u64();
    s.state.rounds_since_positive = static_cast<int>(r.i64());
    s.state.done = r.boolean();
    s.carry.trunc_round = r.i64();
    s.carry.trunc_fired = r.boolean();
    s.carry.trunc_kept_first = r.boolean();
    s.stats.input = r.u64();
    s.stats.dropped = r.u64();
    s.stats.corrupted = r.u64();
    s.stats.retimed = r.u64();
    s.repair.restore(r);
    const std::uint64_t n = r.u64();
    s.buf.clear();
    std::uint32_t prev_rel = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      probe::Observation obs;
      obs.rel_time = prev_rel + r.u32();
      prev_rel = obs.rel_time;
      obs.addr = r.u8();
      obs.up = r.boolean();
      s.buf.push_back(obs);
    }
    s.base = r.u64();
    s.released = r.u64();
    s.consumed = r.u64();
    s.delivered = r.u64();
    s.first_rel = r.u32();
    s.last_rel = r.u32();
    if (s.consumed < s.base || s.released < s.base ||
        s.consumed > s.base + s.buf.size() ||
        s.released > s.base + s.buf.size()) {
      throw util::StateError(util::StateErrorKind::kBadValue,
                             "stream cursors outside the buffered range");
    }
  }
  recon_.restore(r);
  if (saved_classify_pending) {
    classify_recon_.restore(r);
  } else {
    classify_pending_ = false;
  }
}

std::size_t BlockStream::memory_bytes() const noexcept {
  std::size_t bytes = streams_.capacity() * sizeof(Stream);
  for (const auto& s : streams_) {
    bytes += s.buf.capacity() * sizeof(probe::Observation);
  }
  return bytes + recon_.memory_bytes() + classify_recon_.memory_bytes();
}

}  // namespace diurnal::recon
