// Probe-level outage detection in the style of Trinocular (Quan,
// Heidemann & Pradkin, SIGCOMM 2013) — the system whose scans the paper
// re-analyzes, and the outage feed section 2.6 cross-references to
// discard non-human changes ("we can filter out such events by
// comparing them with outage detections").
//
// Per block, a Bayesian belief about block-level reachability is
// updated by every probe: a positive reply is strong evidence the block
// is up; a non-reply is weak evidence scaled by the block's current
// availability A(b) (the fraction of targets that answer when the block
// is up), which is tracked adaptively so diurnal blocks do not read as
// nightly outages.
#pragma once

#include <vector>

#include "probe/prober.h"
#include "util/date.h"

namespace diurnal::recon {

struct OutageDetectorOptions {
  /// Belief thresholds in log-odds: the block is declared down when the
  /// belief falls below -threshold and up again above +threshold.
  double threshold = 6.0;
  /// Log-odds bump for a positive reply (P(positive | down) is ~0).
  double positive_evidence = 3.0;
  /// Floor for the adaptive availability estimate; keeps the per-
  /// non-reply penalty log(1 - A) bounded for sparse blocks.
  double min_availability = 0.04;
  /// EWMA constant for the availability estimate (per observation).
  double availability_gain = 0.02;
  /// Ignore down intervals shorter than this (probing jitter).
  std::int64_t min_duration = 2 * util::kRoundSeconds;
};

/// One detected block-level outage [start, end).
struct DetectedOutage {
  util::SimTime start = 0;
  util::SimTime end = 0;
  std::int64_t duration() const noexcept { return end - start; }
};

struct OutageDetectionResult {
  std::vector<DetectedOutage> outages;
  double final_availability = 0.0;  ///< adaptive A(b) at the window end
  bool ever_up = false;             ///< any positive reply at all
};

/// Runs the belief update over a merged, time-ordered observation
/// stream for one block.  `window` anchors relative times.
OutageDetectionResult detect_outages(const probe::ObservationVec& merged,
                                     probe::ProbeWindow window,
                                     const OutageDetectorOptions& opt = {});

}  // namespace diurnal::recon
