// Per-block observation driver: probes a block from a set of observers,
// optionally injects observer faults (the degraded-mode layer), applies
// 1-loss repair per observer, merges the streams (paper section 2.7),
// and reconstructs the active-address series.
#pragma once

#include <string>
#include <vector>

#include "fault/degradation.h"
#include "fault/fault_plan.h"
#include "probe/loss_model.h"
#include "probe/observer.h"
#include "probe/prober.h"
#include "recon/reconstruct.h"
#include "sim/block_profile.h"

namespace diurnal::recon {

struct BlockObservationConfig {
  std::vector<probe::ObserverSpec> observers;  ///< e.g. sites_from_string("ejnw")
  probe::LossModel loss{};
  probe::ProbeWindow window{};
  probe::ProberConfig prober{};  ///< kind kTrinocular unless overridden
  bool one_loss_repair = true;
  /// Add the section-2.8 additional-observations prober on top of the
  /// regular observers.
  bool additional_observations = false;
  /// Fault plan applied to each observer's stream before repair; null or
  /// empty means a healthy fleet (bit-identical to no fault layer).
  const fault::FaultPlan* faults = nullptr;
  ReconOptions recon{};
};

/// Probes + repairs + merges + reconstructs one block.
ReconResult observe_and_reconstruct(const sim::BlockProfile& block,
                                    const BlockObservationConfig& config);

/// Same, reusing caller-owned scratch buffers (one per worker thread);
/// fleet loops call this overload to avoid per-block allocations.
ReconResult observe_and_reconstruct(const sim::BlockProfile& block,
                                    const BlockObservationConfig& config,
                                    probe::ProbeScratch& scratch);

/// Degraded-mode variant: also reports what each observer actually
/// delivered (stream spans and fault-injection stats), the raw material
/// of the fleet's DegradationReport.  `out` is reused across calls (one
/// per worker thread, like the scratch).
struct DegradedReconResult {
  ReconResult recon;
  std::vector<fault::ObserverStreamInfo> observers;
};
void observe_and_reconstruct_degraded(const sim::BlockProfile& block,
                                      const BlockObservationConfig& config,
                                      probe::ProbeScratch& scratch,
                                      DegradedReconResult& out);

/// DegradedReconResult with the series externalized (core::SeriesStore
/// rows): statistics plus observer stream info only.  Reused across
/// blocks like the scratch buffers.
struct DegradedReconStats {
  ReconStats recon;
  std::vector<fault::ObserverStreamInfo> observers;
};

/// Same, but also returns each observer's own single-site reconstruction
/// (used by the loss study of section 3.3 and the health check).
struct PerObserverRecon {
  char code = '?';
  ReconResult result;
};
struct MultiReconResult {
  ReconResult combined;
  std::vector<PerObserverRecon> per_observer;
};
MultiReconResult observe_and_reconstruct_detailed(
    const sim::BlockProfile& block, const BlockObservationConfig& config);

}  // namespace diurnal::recon
