#include "recon/outage.h"

#include <algorithm>
#include <cmath>

namespace diurnal::recon {

OutageDetectionResult detect_outages(const probe::ObservationVec& merged,
                                     probe::ProbeWindow window,
                                     const OutageDetectorOptions& opt) {
  OutageDetectionResult res;
  if (merged.empty()) return res;

  // Seed the availability estimate from the first day of observations so
  // the detector does not misread a sparse block's early non-replies.
  double availability = 0.25;
  {
    std::size_t n = 0, pos = 0;
    for (const auto& o : merged) {
      if (o.rel_time > static_cast<std::uint32_t>(util::kSecondsPerDay)) break;
      ++n;
      pos += o.up ? 1 : 0;
    }
    if (n >= 16) {
      availability = std::max(opt.min_availability,
                              static_cast<double>(pos) / static_cast<double>(n));
    }
  }

  double belief = opt.threshold;  // start confident-up
  bool down = false;
  util::SimTime down_since = 0;

  for (const auto& o : merged) {
    const util::SimTime t = window.start + static_cast<util::SimTime>(o.rel_time);
    if (o.up) {
      res.ever_up = true;
      belief = std::min(belief + opt.positive_evidence, 4.0 * opt.threshold);
      if (down && belief > opt.threshold) {
        if (t - down_since >= opt.min_duration) {
          res.outages.push_back(DetectedOutage{down_since, t});
        }
        down = false;
      }
    } else {
      // P(non-reply | up) = 1 - A; P(non-reply | down) ~ 1.
      belief += std::log(1.0 - availability);
      if (!down && belief < -opt.threshold) {
        down = true;
        down_since = t;
      }
    }
    // Track availability only while the block is believed up, so the
    // estimate reflects how the block answers when reachable.
    if (!down) {
      availability += opt.availability_gain *
                      ((o.up ? 1.0 : 0.0) - availability);
      availability = std::max(availability, opt.min_availability);
    }
    belief = std::max(belief, -4.0 * opt.threshold);
  }
  if (down && window.end - down_since >= opt.min_duration) {
    res.outages.push_back(DetectedOutage{down_since, window.end});
  }
  res.final_availability = availability;
  return res;
}

}  // namespace diurnal::recon
