// 1-loss repair (paper sections 2.3 and 3.3, after Heidemann et al.
// 2008 section 3.5).
//
// Reconstruction interprets a non-reply as "address inactive until
// rescanned", so a single lost probe on a congested path fabricates a
// long down period.  Because active addresses stay active across many
// rounds and loss is rare (back-to-back losses ~ p^2), the pattern
// positive/non/positive (101) in one observer's per-address sequence is
// better explained by loss: repair rewrites it to 111.  Patterns 001 and
// 110 are left alone.  Repair runs per observer, before merging.
#pragma once

#include <array>
#include <cstddef>

#include "probe/prober.h"
#include "util/state_io.h"

namespace diurnal::recon {

/// Statistics from a repair pass.
struct RepairStats {
  std::size_t observations = 0;
  std::size_t repaired = 0;  ///< non-replies flipped to positive

  double repair_fraction() const noexcept {
    return observations == 0
               ? 0.0
               : static_cast<double>(repaired) / static_cast<double>(observations);
  }
};

/// Applies 1-loss repair in place to a single observer's time-ordered
/// observation stream.  Returns how many observations were rewritten.
RepairStats one_loss_repair(probe::ObservationVec& stream);

/// Incremental 1-loss repair over a growing stream (the streaming
/// pipeline's hold-until-rescanned stage).  Repair is not causal: a
/// non-reply with a positive predecessor stays mutable until the next
/// observation of the same address arrives, so such observations are
/// held back and everything behind the earliest held one is released.
/// Feeding a full stream through ingest() in any chunking and then
/// finish() leaves the stream byte-identical to one one_loss_repair
/// pass.
///
/// Indices are absolute stream positions (monotone over the stream's
/// lifetime); the caller passes `base`, the absolute index of
/// stream[0], so it may compact released-and-consumed prefixes away
/// between calls.  Only observations at or above the returned frontier
/// may still be rewritten, so compacting below it is always safe.
class StreamRepair {
 public:
  StreamRepair() { reset(); }

  void reset();

  /// Processes every observation appended since the last call
  /// (absolute positions [processed, base + stream.size())), applying
  /// repairs in place.  Returns the release frontier: the absolute
  /// index below which every observation has reached its final value.
  std::size_t ingest(probe::ObservationVec& stream, std::size_t base);

  /// End-of-stream: observations still held (their rescan never came)
  /// keep their probed value, exactly as the batch pass leaves them.
  /// Returns the frontier, now equal to the stream length.
  std::size_t finish() noexcept { return processed_; }

  const RepairStats& stats() const noexcept { return stats_; }

  /// Serializes the per-address hold table, the processed frontier and
  /// the running stats; restore() overwrites them so ingest() continues
  /// exactly where the saved machine stopped.
  void save(util::StateWriter& w) const;
  void restore(util::StateReader& r);

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  struct AddrState {
    std::size_t last = kNone;  ///< absolute index of the latest observation
    bool has_prev = false;
    bool last_up = false;
    bool prev_up = false;
  };
  std::array<AddrState, 256> addr_{};
  std::size_t processed_ = 0;  ///< absolute index of the next unseen obs
  RepairStats stats_{};
};

}  // namespace diurnal::recon
