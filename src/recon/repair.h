// 1-loss repair (paper sections 2.3 and 3.3, after Heidemann et al.
// 2008 section 3.5).
//
// Reconstruction interprets a non-reply as "address inactive until
// rescanned", so a single lost probe on a congested path fabricates a
// long down period.  Because active addresses stay active across many
// rounds and loss is rare (back-to-back losses ~ p^2), the pattern
// positive/non/positive (101) in one observer's per-address sequence is
// better explained by loss: repair rewrites it to 111.  Patterns 001 and
// 110 are left alone.  Repair runs per observer, before merging.
#pragma once

#include "probe/prober.h"

namespace diurnal::recon {

/// Statistics from a repair pass.
struct RepairStats {
  std::size_t observations = 0;
  std::size_t repaired = 0;  ///< non-replies flipped to positive

  double repair_fraction() const noexcept {
    return observations == 0
               ? 0.0
               : static_cast<double>(repaired) / static_cast<double>(observations);
  }
};

/// Applies 1-loss repair in place to a single observer's time-ordered
/// observation stream.  Returns how many observations were rewritten.
RepairStats one_loss_repair(probe::ObservationVec& stream);

}  // namespace diurnal::recon
