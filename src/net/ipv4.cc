#include "net/ipv4.h"

#include <cstdio>
#include <stdexcept>

namespace diurnal::net {

std::string IPv4Addr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

IPv4Addr IPv4Addr::parse(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int n = std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("IPv4Addr::parse: malformed address '" + s + "'");
  }
  return IPv4Addr((a << 24) | (b << 16) | (c << 8) | d);
}

std::string BlockId::to_string() const {
  return base().to_string().substr(0, base().to_string().rfind('.')) + ".0/24";
}

BlockId BlockId::parse(const std::string& s) {
  const std::size_t slash = s.find('/');
  const std::string addr_part = slash == std::string::npos ? s : s.substr(0, slash);
  if (slash != std::string::npos && s.substr(slash) != "/24") {
    throw std::invalid_argument("BlockId::parse: only /24 supported: '" + s + "'");
  }
  return containing(IPv4Addr::parse(addr_part));
}

}  // namespace diurnal::net
