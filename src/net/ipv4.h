// IPv4 addresses and /24 blocks.
//
// The paper's unit of analysis is the /24 block (256 adjacent IPv4
// addresses); individual addresses only matter inside reconstruction,
// which is also where the privacy boundary sits (Appendix A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace diurnal::net {

/// An IPv4 address as a host-order 32-bit integer.
class IPv4Addr {
 public:
  constexpr IPv4Addr() = default;
  constexpr explicit IPv4Addr(std::uint32_t value) noexcept : value_(value) {}

  constexpr std::uint32_t value() const noexcept { return value_; }

  /// Last octet (position within the /24).
  constexpr std::uint8_t last_octet() const noexcept {
    return static_cast<std::uint8_t>(value_ & 0xFF);
  }

  /// Dotted-quad string.
  std::string to_string() const;

  /// Parses dotted-quad; throws std::invalid_argument on malformed input.
  static IPv4Addr parse(const std::string& s);

  friend constexpr bool operator==(IPv4Addr, IPv4Addr) = default;
  friend constexpr auto operator<=>(IPv4Addr, IPv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// Identifier of a /24 block: the top 24 bits of its prefix.
/// BlockId b covers addresses [b << 8, (b << 8) + 255].
class BlockId {
 public:
  constexpr BlockId() = default;
  constexpr explicit BlockId(std::uint32_t id) noexcept : id_(id) {}

  /// The /24 containing an address.
  static constexpr BlockId containing(IPv4Addr a) noexcept {
    return BlockId(a.value() >> 8);
  }

  constexpr std::uint32_t id() const noexcept { return id_; }

  /// The i-th address in the block (i in [0, 255]).
  constexpr IPv4Addr address(std::uint8_t i) const noexcept {
    return IPv4Addr((id_ << 8) | i);
  }

  /// First address of the block.
  constexpr IPv4Addr base() const noexcept { return address(0); }

  /// CIDR string, e.g. "128.9.144.0/24".
  std::string to_string() const;

  /// Parses "a.b.c.0/24" or "a.b.c.d" (taking the containing /24).
  static BlockId parse(const std::string& s);

  friend constexpr bool operator==(BlockId, BlockId) = default;
  friend constexpr auto operator<=>(BlockId, BlockId) = default;

 private:
  std::uint32_t id_ = 0;
};

/// Number of addresses in a /24.
inline constexpr int kBlockSize = 256;

}  // namespace diurnal::net

template <>
struct std::hash<diurnal::net::BlockId> {
  std::size_t operator()(diurnal::net::BlockId b) const noexcept {
    return std::hash<std::uint32_t>{}(b.id());
  }
};

template <>
struct std::hash<diurnal::net::IPv4Addr> {
  std::size_t operator()(diurnal::net::IPv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
