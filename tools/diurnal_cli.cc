// diurnal_cli: command-line driver for the full pipeline.
//
//   diurnal_cli run      [--blocks N] [--seed S] [--dataset D]
//                        [--classify D2] [--country CC] [--out PREFIX]
//                        [--fault SCENARIO] [--discover] [--validate]
//                        [--stream] [--epoch=DUR]
//                        [--shards N | --shard-size S] [--max-resident M]
//                        [--checkpoint-dir DIR] [--resume]
//                        [--checkpoint-every N] [--max-shards K]
//   diurnal_cli block    [--dataset D] [--id A.B.C.0/24 | --usc | --vpn]
//                        [--fault SCENARIO]
//   diurnal_cli datasets
//   diurnal_cli sites
//   diurnal_cli faults
//
// `run` executes probe -> reconstruct -> classify -> detect -> aggregate
// over a synthetic world, optionally exporting CSVs (--out), discovering
// regional events (--discover), and scoring against ground truth
// (--validate).  `block` runs the single-block pipeline and prints the
// Figure-1-style story for one /24.  `--fault` injects a named observer
// fault scenario (see `faults`) and reports the degradation summary.
// `--stream` drives the fleet incrementally, one epoch (--epoch=1d, 6h,
// 660s, ...) at a time, printing per-epoch delivery counts and
// provisional change alarms before the authoritative final result —
// which is bit-identical to the batch run.  `--shards`/`--shard-size`
// select the bounded-memory sharded drive (blocks materialized lazily,
// at most --max-resident shards alive; results bit-identical to the
// unsharded run) and print residency stats plus peak RSS.
// `--checkpoint-dir` externalizes progress: the sharded drive records
// each completed shard (plus a manifest) there, the streaming drive
// snapshots the engine after every epoch; `--resume` picks either back
// up, skipping completed work, with a final result bit-identical to an
// uninterrupted run.  `--max-shards K` stops the sharded drive after K
// computed shards (the kill half of a kill/resume demo); see
// EXPERIMENTS.md for the recipe.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include <filesystem>

#include "core/checkpoint.h"
#include "core/discovery.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/shard.h"
#include "core/streaming.h"
#include "fault/fault_plan.h"
#include "geo/countries.h"
#include "recon/block_recon.h"
#include "sim/country_layers.h"
#include "util/date.h"
#include "util/mem.h"
#include "util/table.h"

using namespace diurnal;

namespace {

struct Args {
  std::string command;
  int blocks = 3000;
  std::uint64_t seed = 1;
  std::string dataset = "2020q1-ejnw";
  std::optional<std::string> classify_dataset;
  std::optional<std::string> country;
  std::optional<std::string> out_prefix;
  std::optional<std::string> block_id;
  std::optional<std::string> fault_scenario;
  bool usc = false;
  bool vpn = false;
  bool discover = false;
  bool validate = false;
  bool stream = false;
  std::int64_t epoch = util::kSecondsPerDay;
  // Sharded execution (any of these selects the bounded-memory drive).
  std::size_t shards = 0;        ///< partition into N shards
  std::size_t shard_size = 0;    ///< ... or into shards of S blocks
  std::size_t max_resident = 0;  ///< resident-shard cap (default 4)
  // Checkpoint/restore (core/checkpoint.h, util/state_io.h).
  std::optional<std::string> checkpoint_dir;
  bool resume = false;
  std::size_t checkpoint_every = 1;  ///< manifest rewrite cadence
  std::size_t max_shards = 0;        ///< stop after K computed shards
};

/// Parses "1d", "6h", "90m", "660s", or bare seconds.
std::int64_t parse_duration(const std::string& s) {
  char* end = nullptr;
  const std::int64_t n = std::strtoll(s.c_str(), &end, 10);
  std::int64_t scale = 1;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'd': scale = util::kSecondsPerDay; break;
      case 'h': scale = 3600; break;
      case 'm': scale = 60; break;
      case 's': scale = 1; break;
      default: scale = 0; break;
    }
  }
  if (n <= 0 || scale == 0) {
    std::fprintf(stderr, "bad duration '%s' (use e.g. 1d, 6h, 660s)\n",
                 s.c_str());
    std::exit(2);
  }
  return n * scale;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: diurnal_cli run [--blocks N] [--seed S] [--dataset D]\n"
               "                       [--classify D2] [--country CC]\n"
               "                       [--out PREFIX] [--fault SCENARIO]\n"
               "                       [--discover] [--validate]\n"
               "                       [--stream] [--epoch=DUR]\n"
               "                       [--shards N | --shard-size S]\n"
               "                       [--max-resident M]\n"
               "                       [--checkpoint-dir DIR] [--resume]\n"
               "                       [--checkpoint-every N]\n"
               "                       [--max-shards K]\n"
               "       diurnal_cli block [--dataset D] [--id A.B.C.0/24|--usc|--vpn]\n"
               "                       [--fault SCENARIO]\n"
               "       diurnal_cli datasets | sites | faults\n"
               "       diurnal_cli --list-countries\n"
               "       diurnal_cli --explain-country=CC\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) usage();
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--blocks") a.blocks = std::atoi(value().c_str());
    else if (flag == "--seed") a.seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (flag == "--dataset") a.dataset = value();
    else if (flag == "--classify") a.classify_dataset = value();
    else if (flag == "--country") a.country = value();
    else if (flag == "--out") a.out_prefix = value();
    else if (flag == "--id") a.block_id = value();
    else if (flag == "--fault") a.fault_scenario = value();
    else if (flag == "--usc") a.usc = true;
    else if (flag == "--vpn") a.vpn = true;
    else if (flag == "--discover") a.discover = true;
    else if (flag == "--validate") a.validate = true;
    else if (flag == "--stream") a.stream = true;
    else if (flag == "--shards") a.shards = std::strtoull(value().c_str(), nullptr, 10);
    else if (flag == "--shard-size") a.shard_size = std::strtoull(value().c_str(), nullptr, 10);
    else if (flag == "--max-resident") a.max_resident = std::strtoull(value().c_str(), nullptr, 10);
    else if (flag == "--checkpoint-dir") a.checkpoint_dir = value();
    else if (flag == "--resume") a.resume = true;
    else if (flag == "--checkpoint-every")
      a.checkpoint_every = std::strtoull(value().c_str(), nullptr, 10);
    else if (flag == "--max-shards")
      a.max_shards = std::strtoull(value().c_str(), nullptr, 10);
    else if (flag == "--epoch") a.epoch = parse_duration(value());
    else if (flag.rfind("--epoch=", 0) == 0)
      a.epoch = parse_duration(flag.substr(8));
    else usage();
  }
  return a;
}

void print_funnel_line(const core::FunnelCounts& f) {
  std::printf("funnel: routed %lld | responsive %lld | diurnal %lld | "
              "wide %lld | change-sensitive %lld\n",
              static_cast<long long>(f.routed),
              static_cast<long long>(f.responsive),
              static_cast<long long>(f.diurnal),
              static_cast<long long>(f.wide_swing),
              static_cast<long long>(f.change_sensitive));
}

/// The bounded-memory drive: the world is never materialized whole, so
/// report paths that need it (--out, --validate) or a streaming engine
/// (--stream) are rejected rather than silently forcing a full build.
int cmd_run_sharded(const Args& a, const sim::WorldConfig& wc,
                    const core::FleetConfig& fc) {
  if (a.out_prefix || a.validate || a.stream) {
    std::fprintf(stderr, "--out/--validate/--stream need the whole world "
                         "resident; drop --shards/--shard-size\n");
    return 2;
  }
  const sim::BlockGenerator gen(wc);
  core::ShardConfig sc;
  if (a.shard_size > 0) {
    sc.shard_size = a.shard_size;
  } else if (a.shards > 0) {
    sc.shard_size = (gen.total_blocks() + a.shards - 1) / a.shards;
  }
  if (a.max_resident > 0) sc.max_resident = a.max_resident;
  if (a.checkpoint_dir) sc.checkpoint_dir = *a.checkpoint_dir;
  sc.resume = a.resume;
  if (a.checkpoint_every > 0) sc.checkpoint_every = a.checkpoint_every;
  sc.max_shards = a.max_shards;

  const auto r = core::run_sharded_fleet(gen, fc, sc);
  if (!sc.checkpoint_dir.empty()) {
    std::printf("checkpoint: %zu shard(s) resumed from %s, %zu computed",
                r.stats.resumed_shards, sc.checkpoint_dir.c_str(),
                r.stats.completed_shards);
    const std::size_t done = r.stats.resumed_shards + r.stats.completed_shards;
    if (done < r.stats.shards) {
      std::printf(" (%zu of %zu remain; rerun with --resume)",
                  r.stats.shards - done, r.stats.shards);
    }
    std::printf("\n");
  }
  print_funnel_line(r.fleet.funnel);
  if (a.fault_scenario) {
    const auto& d = r.fleet.degradation;
    std::printf("degraded fleet (--fault %s): %lld/%lld blocks degraded, "
                "%lld low-confidence\n",
                a.fault_scenario->c_str(),
                static_cast<long long>(d.degraded_blocks),
                static_cast<long long>(d.probed_blocks),
                static_cast<long long>(d.low_confidence_blocks));
  }
  std::printf("shards: %zu of %zu blocks, %zu workers x %zu threads, "
              "peak resident %zu/%zu (%.1f MB accounted)\n",
              r.stats.shards, r.stats.shard_size, r.stats.workers,
              r.stats.intra_threads, r.stats.peak_resident, sc.max_resident,
              static_cast<double>(r.stats.peak_resident_bytes) / 1048576.0);
  const auto mem = util::read_memory_usage();
  if (mem.valid) {
    std::printf("memory: RSS %zu KB, peak %zu KB\n", mem.rss_kb,
                mem.peak_rss_kb);
  }
  if (a.discover) {
    std::printf("\ndiscovered regional events:\n");
    for (const auto& ev : core::discover_events(r.aggregate)) {
      std::printf("  %s\n", ev.to_string().c_str());
    }
  }
  return 0;
}

int cmd_run(const Args& a) {
  sim::WorldConfig wc;
  wc.num_blocks = a.blocks;
  wc.seed = a.seed;
  wc.only_country = a.country;

  core::FleetConfig fc;
  fc.dataset = core::dataset(a.dataset);
  if (a.classify_dataset) fc.classify_dataset = core::dataset(*a.classify_dataset);
  if (a.fault_scenario) {
    fc.faults = fault::scenario(*a.fault_scenario, fc.dataset.window());
  }
  if (a.shards > 0 || a.shard_size > 0 || a.max_resident > 0 ||
      a.max_shards > 0 || (a.checkpoint_dir && !a.stream)) {
    return cmd_run_sharded(a, wc, fc);
  }
  const sim::World world(wc);

  core::FleetResult fleet;
  if (a.stream) {
    core::StreamingFleet engine(world, fc);
    // Streaming checkpoints: one engine snapshot per epoch, keyed by the
    // same config fingerprint as the shard files (shard_size 0).
    std::string ckpt_path;
    const std::uint64_t fp = core::checkpoint_fingerprint(wc, fc, 0);
    if (a.checkpoint_dir) {
      std::error_code ec;
      std::filesystem::create_directories(*a.checkpoint_dir, ec);
      ckpt_path = *a.checkpoint_dir + "/stream.ckpt";
    }
    if (a.resume && !ckpt_path.empty()) {
      try {
        const auto image = util::read_state_file(ckpt_path);
        util::StateReader r(image);
        r.begin_section(util::state_tag("CLIM"));
        if (r.u64() != fp) {
          throw util::StateError(
              util::StateErrorKind::kBadValue,
              "stream checkpoint was written under a different configuration");
        }
        r.end_section();
        engine.restore(r);
        std::printf("resumed stream checkpoint at %s\n",
                    util::to_string(util::date_of(engine.clock())).c_str());
      } catch (const util::StateError& e) {
        std::fprintf(stderr, "cannot resume %s (%s); starting fresh\n",
                     ckpt_path.c_str(), e.what());
      }
    }
    for (util::SimTime t = engine.clock() + a.epoch;; t += a.epoch) {
      const auto bounded = std::min(t, engine.window_end());
      const auto rep = engine.advance_to(bounded);
      std::printf("epoch %3zu  %s  %9zu obs%s\n", rep.epoch_index,
                  util::to_string(util::date_of(rep.epoch_end)).c_str(),
                  rep.observations,
                  rep.classification_complete ? "  [classification final]"
                                              : "");
      for (const auto& p : rep.provisional) {
        std::printf("  ~ provisional %s %s alarm %s (z %+.1f)\n",
                    p.direction == analysis::ChangeDirection::kDown ? "DOWN"
                                                                    : "UP",
                    p.id.to_string().c_str(),
                    util::to_string(util::date_of(p.alarm)).c_str(),
                    p.amplitude);
      }
      if (bounded == engine.window_end()) break;
      if (!ckpt_path.empty()) {
        util::StateWriter w;
        w.begin_section(util::state_tag("CLIM"));
        w.u64(fp);
        w.end_section();
        engine.save(w);
        util::write_state_file(ckpt_path, w.bytes());
      }
    }
    fleet = engine.finalize();
    // The run is complete; a stale snapshot must not resume a finished
    // world, so drop it.
    if (!ckpt_path.empty()) std::remove(ckpt_path.c_str());
    const auto span = engine.window_end() - engine.window_start();
    std::printf("finalized: authoritative result over %lld epochs\n\n",
                static_cast<long long>((span + a.epoch - 1) / a.epoch));
  } else {
    fleet = core::run_fleet(world, fc);
  }
  print_funnel_line(fleet.funnel);
  if (a.fault_scenario) {
    const auto& d = fleet.degradation;
    std::printf("degraded fleet (--fault %s): %lld/%lld blocks degraded, "
                "%lld low-confidence, %lld missing observers, "
                "mean evidence %.3f\n",
                a.fault_scenario->c_str(),
                static_cast<long long>(d.degraded_blocks),
                static_cast<long long>(d.probed_blocks),
                static_cast<long long>(d.low_confidence_blocks),
                static_cast<long long>(d.blocks_missing_observers),
                d.mean_evidence_fraction);
  }

  const auto agg = core::aggregate_changes(world, fleet, fc);
  if (a.discover) {
    std::printf("\ndiscovered regional events:\n");
    for (const auto& ev : core::discover_events(agg)) {
      std::printf("  %s\n", ev.to_string().c_str());
    }
  }
  if (a.validate) {
    core::ValidationConfig vc;
    vc.window = fc.dataset.window();
    const auto v = core::validate_sample(world, fleet, vc);
    std::printf("\nvalidation: %d sampled, TP %d FP %d FN %d -> "
                "precision %s recall %s\n",
                v.total, v.true_positive, v.false_positive, v.false_negative,
                util::fmt_pct(v.precision(), 0).c_str(),
                util::fmt_pct(v.recall(), 0).c_str());
  }
  if (a.out_prefix) {
    const auto paths = core::write_report(*a.out_prefix, world, fleet, agg);
    std::printf("\nwrote %s %s %s %s\n", paths.funnel.c_str(),
                paths.blocks.c_str(), paths.changes.c_str(),
                paths.cells.c_str());
  }
  return 0;
}

int cmd_block(const Args& a) {
  sim::WorldConfig wc;
  wc.num_blocks = a.block_id ? a.blocks : 0;
  wc.seed = a.seed;
  const sim::World world(wc);

  net::BlockId id = world.usc_office_block();
  if (a.vpn) id = world.usc_vpn_block();
  if (a.block_id) id = net::BlockId::parse(*a.block_id);
  const auto* block = world.find(id);
  if (block == nullptr) {
    std::fprintf(stderr, "block %s not in this world\n", id.to_string().c_str());
    return 1;
  }

  const auto ds = core::dataset(a.dataset);
  recon::BlockObservationConfig oc;
  oc.observers = ds.observers();
  oc.window = ds.window();
  fault::FaultPlan plan;
  if (a.fault_scenario) {
    plan = fault::scenario(*a.fault_scenario, ds.window());
    oc.faults = &plan;
  }
  const auto r = recon::observe_and_reconstruct(*block, oc);
  const auto cls = core::classify_block(r);
  std::printf("%s: |E(b)| %d, max active %.0f, reply rate %.3f\n",
              id.to_string().c_str(), r.eb_count, r.max_active,
              r.mean_reply_rate);
  if (a.fault_scenario) {
    std::printf("degraded (--fault %s): evidence %.3f, max gap %.1f h%s\n",
                a.fault_scenario->c_str(), r.evidence_fraction,
                r.max_gap_seconds / 3600.0,
                cls.low_confidence ? "  [LOW CONFIDENCE]" : "");
  }
  std::printf("diurnal %s (ratio %.2f), wide swing %s (max %.0f) -> "
              "change-sensitive %s\n",
              cls.diurnal ? "yes" : "no", cls.diurnal_detail.power_ratio,
              cls.wide_swing ? "yes" : "no", cls.swing_detail.max_daily_swing,
              cls.change_sensitive ? "YES" : "no");
  for (const auto& c : core::detect_changes(r.counts).changes) {
    std::printf("  %s alarm %s amplitude %+.1f addr%s%s\n",
                c.direction == analysis::ChangeDirection::kDown ? "DOWN" : "UP",
                util::to_string(util::date_of(c.alarm)).c_str(),
                c.amplitude_addresses,
                c.filtered_as_outage ? " [outage]" : "",
                c.filtered_small ? " [small]" : "");
  }
  return 0;
}

}  // namespace

/// Resolves the default world's country-layer stack (registry values,
/// no overrides, default horizon) — the view `run` uses unless a
/// scenario stacks CountryLayerOverride entries on top.
sim::CountryLayerTable default_layer_table() {
  const sim::WorldConfig wc;
  return sim::CountryLayerTable(wc.country_layers, wc.outage_rate_per_90d,
                                wc.renumber_probability, wc.horizon_start,
                                wc.horizon_end);
}

int cmd_list_countries() {
  const auto table = default_layer_table();
  std::printf("%-4s %-22s %7s %8s %12s %8s %5s %4s %8s\n", "code", "name",
              "weight", "diurnal", "cgnat", "outage", "renum", "utc",
              "dst");
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& rc = table.resolved(i);
    const auto& p = *rc.profile;
    std::printf("%-4s %-22s %7.2f %8.3f %5.3f->%5.3f %8.3f %5.3f %+4d %8s\n",
                p.code.c_str(), p.name.c_str(), rc.pick_weight,
                rc.diurnal_visible, rc.cgnat_start, rc.cgnat_end,
                rc.outage_rate_per_90d, rc.renumber_probability,
                rc.utc_offset_hours,
                std::string(geo::to_string(rc.dst)).c_str());
  }
  return 0;
}

int cmd_explain_country(const std::string& code) {
  const auto table = default_layer_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& rc = table.resolved(i);
    const auto& p = *rc.profile;
    if (p.code != code) continue;
    std::printf("%s (%s) — resolved layer stack over the default horizon\n",
                p.name.c_str(), p.code.c_str());
    std::printf("  demographics:  pick weight %.2f, %zu cities\n",
                rc.pick_weight, p.demographics.cities.size());
    std::printf("  adoption:      diurnal-visible %.3f, CGNAT %.3f -> %.3f "
                "over the horizon\n",
                rc.diurnal_visible, rc.cgnat_start, rc.cgnat_end);
    std::printf("  network ops:   outage rate %.3f per 90d, renumber "
                "probability %.3f\n",
                rc.outage_rate_per_90d, rc.renumber_probability);
    std::printf("  time rules:    UTC%+d, DST %s, %zu annual holiday(s)\n",
                rc.utc_offset_hours,
                std::string(geo::to_string(rc.dst)).c_str(),
                rc.holidays.size());
    for (const auto& h : rc.holidays) {
      std::printf("                 %s: %02d-%02d, %d day(s), adoption %.2f, "
                  "residual %.2f\n",
                  h.name.c_str(), h.month, h.day, h.duration_days,
                  h.adoption, h.residual_attendance);
    }
    if (rc.tz_shifts.empty()) {
      std::printf("                 no tz transitions in the horizon\n");
    }
    for (const auto& s : rc.tz_shifts) {
      std::printf("                 %s -> UTC%+d\n",
                  util::to_string_time(s.at).c_str(),
                  static_cast<int>(s.offset_hours));
    }
    std::printf("  drift:         adoption %+.3f/yr, CGNAT %+.3f/yr\n",
                rc.adoption_trend_per_year, rc.cgnat_trend_per_year);
    if (p.wfh_2020) {
      std::printf("  wfh 2020:      %s\n",
                  util::to_string(*p.wfh_2020).c_str());
    }
    return 0;
  }
  std::fprintf(stderr, "unknown country code '%s' (try --list-countries)\n",
               code.c_str());
  return 2;
}

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string cmd = argv[1];
    if (cmd == "--list-countries" || cmd == "countries") {
      return cmd_list_countries();
    }
    if (cmd.rfind("--explain-country=", 0) == 0) {
      return cmd_explain_country(cmd.substr(std::strlen("--explain-country=")));
    }
    if (cmd == "--explain-country" && argc >= 3) {
      return cmd_explain_country(argv[2]);
    }
  }
  const Args a = parse(argc, argv);
  if (a.command == "run") return cmd_run(a);
  if (a.command == "block") return cmd_block(a);
  if (a.command == "datasets") {
    for (const auto& d : core::table6_datasets()) {
      std::printf("%-12s %-50s %s %2d weeks\n", d.abbr.c_str(),
                  d.full_name.c_str(), util::to_string(d.start).c_str(),
                  d.duration_weeks);
    }
    return 0;
  }
  if (a.command == "faults") {
    for (const auto& name : fault::scenario_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (a.command == "sites") {
    for (const auto& s : probe::trinocular_sites()) {
      std::printf("%c  %-28s phase %3llds%s\n", s.code, s.location.c_str(),
                  static_cast<long long>(s.phase),
                  s.fault_end > s.fault_start ? "  (faulty in 2020h1)" : "");
    }
    return 0;
  }
  usage();
}
