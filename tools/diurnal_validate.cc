// diurnal_validate: end-to-end accuracy gate against planted truth.
//
//   diurnal_validate [--scenario NAME] [--baseline PATH]
//                    [--update-baseline] [--json] [--list]
//                    [--threads N] [--batch-only]
//
// Runs every catalog scenario (or one, with --scenario) through the
// full pipeline — batch AND streaming drives — scores detections
// against the planted event calendar with the paper's +-4-day rule,
// and compares the scorecards to the checked-in golden baseline
// (VALIDATE_baseline.json; override with --baseline or the
// DIURNAL_VALIDATE_BASELINE environment variable).
//
// Exit status: 0 all gates pass; 1 any baseline deviation, batch vs
// streaming disagreement, or scenario-expectation violation; 2 usage.
//
// --update-baseline rewrites the baseline from the current run (gates
// other than the baseline comparison still apply: a run that violates
// its own invariants must not be recorded as golden).  --json prints
// the current results document to stdout for machine consumers.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "util/date.h"
#include "util/table.h"
#include "validate/baseline.h"
#include "validate/harness.h"
#include "validate/scenario.h"

using namespace diurnal;

namespace {

struct Args {
  std::optional<std::string> scenario;
  std::string baseline_path = "VALIDATE_baseline.json";
  bool update_baseline = false;
  bool json = false;
  bool list = false;
  bool batch_only = false;
  bool explain = false;
  int threads = 0;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: diurnal_validate [--scenario NAME] [--baseline PATH]\n"
      "                        [--update-baseline] [--json] [--list]\n"
      "                        [--threads N] [--batch-only] [--explain]\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  if (const char* env = std::getenv("DIURNAL_VALIDATE_BASELINE")) {
    a.baseline_path = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--scenario") a.scenario = value();
    else if (flag == "--baseline") a.baseline_path = value();
    else if (flag == "--update-baseline") a.update_baseline = true;
    else if (flag == "--json") a.json = true;
    else if (flag == "--list") a.list = true;
    else if (flag == "--batch-only") a.batch_only = true;
    else if (flag == "--explain") a.explain = true;
    else if (flag == "--threads") a.threads = std::atoi(value().c_str());
    else usage();
  }
  return a;
}

std::string fmt_latency(std::optional<double> days) {
  if (!days) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fd", *days);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  if (a.list) {
    for (const auto& s : validate::catalog()) {
      std::printf("%-16s %s%s\n", s.name.c_str(), s.title.c_str(),
                  s.fault_scenario == "none"
                      ? ""
                      : ("  [fault: " + s.fault_scenario + "]").c_str());
    }
    return 0;
  }
  if (a.scenario && validate::find_scenario(*a.scenario) == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (see --list)\n",
                 a.scenario->c_str());
    return 2;
  }

  validate::Baseline current;
  std::vector<std::string> violations;
  std::vector<std::pair<std::string, validate::ScenarioRun>> runs;

  util::TextTable table({"scenario", "blocks", "truth", "TP", "FN", "FP",
                         "discards", "warmup", "precision", "recall", "F1",
                         "latency", "digest"});
  for (const auto& s : validate::catalog()) {
    if (a.scenario && s.name != *a.scenario) continue;

    const sim::World world(s.world);
    std::vector<validate::ExplainEntry> details;
    auto run = validate::run_scenario(s, world, validate::Drive::kBatch,
                                      a.threads,
                                      a.explain ? &details : nullptr);
    if (a.explain) {
      for (const auto& e : details) {
        std::string note;
        if (e.what == validate::ExplainEntry::What::kMissedTruth) {
          note = " [" + std::string(validate::to_string(e.cls)) + "]";
        } else if (e.near_artifact) {
          note = " [near planted outage]";
        }
        std::printf(
            "%-16s %-14s %-14s %s %-4s %7.1f addr  %s%s\n", s.name.c_str(),
            e.id.to_string().c_str(), sim::to_string(e.category).data(),
            util::to_string(util::date_of(e.at)).c_str(),
            e.direction == analysis::ChangeDirection::kUp ? "up" : "down",
            e.amplitude_addresses, validate::to_string(e.what).data(),
            note.c_str());
      }
    }
    if (!a.batch_only) {
      const auto streamed = validate::run_scenario(
          s, world, validate::Drive::kStreaming, a.threads);
      if (!(streamed.score == run.score) || streamed.digest != run.digest) {
        violations.push_back(
            s.name + ": batch and streaming drives disagree (digest " +
            validate::make_record(run.score, run.digest).digest + " vs " +
            validate::make_record(streamed.score, streamed.digest).digest +
            ")");
      }
    }

    for (auto& v : validate::check_expectations(s, run)) {
      violations.push_back(std::move(v));
    }
    if (!s.clean_counterpart.empty()) {
      const validate::ScenarioRun* clean = nullptr;
      for (const auto& [name, r] : runs) {
        if (name == s.clean_counterpart) clean = &r;
      }
      if (clean == nullptr) {
        violations.push_back(s.name + ": clean counterpart '" +
                             s.clean_counterpart + "' did not run first");
      } else {
        for (auto& v : validate::check_fault_invariants(s, run, *clean)) {
          violations.push_back(std::move(v));
        }
      }
    }

    const auto rec = validate::make_record(run.score, run.digest);
    const auto& c = run.score;
    table.add_row({s.name, std::to_string(c.blocks_scored),
                   std::to_string(c.truth_total()),
                   std::to_string(c.true_positive()),
                   std::to_string(c.false_negative()),
                   std::to_string(c.false_positive),
                   std::to_string(c.outage_discards),
                   std::to_string(c.warmup_excluded),
                   util::fmt_pct(c.precision()), util::fmt_pct(c.recall()),
                   util::fmt_pct(c.f1()),
                   fmt_latency(c.mean_abs_latency_days()), rec.digest});
    current.scenarios.emplace_back(s.name, rec);
    runs.emplace_back(s.name, std::move(run));
  }

  if (a.json) {
    std::fputs(validate::to_json(current).c_str(), stdout);
  } else {
    table.print();
  }

  int failures = 0;
  for (const auto& v : violations) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", v.c_str());
    ++failures;
  }

  if (a.update_baseline) {
    if (failures > 0) {
      std::fprintf(stderr,
                   "refusing to record a baseline from a run with %d "
                   "violation(s)\n",
                   failures);
      return 1;
    }
    if (a.scenario) {
      std::fprintf(stderr,
                   "--update-baseline requires a full catalog run "
                   "(drop --scenario)\n");
      return 2;
    }
    std::ofstream out(a.baseline_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", a.baseline_path.c_str());
      return 1;
    }
    out << validate::to_json(current);
    std::printf("baseline written to %s\n", a.baseline_path.c_str());
    return 0;
  }

  std::ifstream in(a.baseline_path);
  if (!in) {
    std::fprintf(stderr,
                 "no baseline at %s (run with --update-baseline to create "
                 "one)\n",
                 a.baseline_path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  validate::Baseline baseline;
  try {
    baseline = validate::parse_baseline(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", a.baseline_path.c_str(), e.what());
    return 1;
  }

  const auto mismatches = validate::compare_to_baseline(
      baseline, current, 1e-9, a.scenario ? *a.scenario : std::string{});
  for (const auto& m : mismatches) {
    std::fprintf(stderr, "BASELINE DEVIATION: %s.%s: expected %s, got %s\n",
                 m.scenario.c_str(), m.field.c_str(), m.expected.c_str(),
                 m.actual.c_str());
    ++failures;
  }

  if (failures == 0) {
    std::printf("all %zu scenario(s) match %s\n", current.scenarios.size(),
                a.baseline_path.c_str());
    return 0;
  }
  std::fprintf(stderr, "%d failure(s)\n", failures);
  return 1;
}
