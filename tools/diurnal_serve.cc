// diurnal_serve — the always-on observatory demo over a synthetic
// world:
//
//   diurnal_serve [--blocks N] [--seed S] [--dataset D] [--fault SC]
//                 [--epoch DUR] [--readers R] [--feed-capacity C]
//                 [--threads T] [--no-image]
//                 [--checkpoint-dir DIR] [--resume] [--stop-after K]
//
// Runs core::SnapshotServer: a single writer ingests the world epoch by
// epoch (--epoch=1d, 6h, ...) and publishes an immutable snapshot per
// epoch while --readers threads concurrently answer a rotating mix of
// block/trend/alarm/gridcell/scorecard queries against their pinned
// snapshot.  Each epoch prints the scorecard line an analyst would
// watch; on completion the feed drains, the engine finalizes (bit-
// identical to the batch drive) and the funnel, fleet digest and
// reader latency distribution are reported.
//
// Shutdown semantics: SIGINT (or --stop-after K epochs) stops the
// writer in place; with --checkpoint-dir the latest snapshot's engine
// image is persisted (plus a fingerprint sidecar) and a later --resume
// continues the run from that epoch, finalizing to the same digest as
// an uninterrupted run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/datasets.h"
#include "core/digest.h"
#include "core/snapshot_server.h"
#include "fault/fault_plan.h"
#include "sim/world.h"
#include "util/date.h"
#include "util/state_io.h"

using namespace diurnal;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

struct Args {
  int blocks = 2000;
  std::uint64_t seed = 1;
  std::string dataset = "2020m1-ejnw";
  std::optional<std::string> fault_scenario;
  std::int64_t epoch = util::kSecondsPerDay;
  int readers = 4;
  std::size_t feed_capacity = 4;
  int threads = 0;
  bool keep_image = true;
  std::optional<std::string> checkpoint_dir;
  bool resume = false;
  std::size_t stop_after = 0;  ///< 0 = run to the window end
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: diurnal_serve [--blocks N] [--seed S] [--dataset D]\n"
      "                     [--fault SCENARIO] [--epoch DUR] [--readers R]\n"
      "                     [--feed-capacity C] [--threads T] [--no-image]\n"
      "                     [--checkpoint-dir DIR] [--resume]\n"
      "                     [--stop-after K]\n");
  std::exit(2);
}

/// Parses "1d", "6h", "90m", "660s", or bare seconds.
std::int64_t parse_duration(const std::string& s) {
  char* end = nullptr;
  const std::int64_t n = std::strtoll(s.c_str(), &end, 10);
  std::int64_t scale = 1;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'd': scale = util::kSecondsPerDay; break;
      case 'h': scale = 3600; break;
      case 'm': scale = 60; break;
      case 's': scale = 1; break;
      default: scale = 0; break;
    }
  }
  if (n <= 0 || scale == 0) {
    std::fprintf(stderr, "bad duration '%s' (use e.g. 1d, 6h, 660s)\n",
                 s.c_str());
    std::exit(2);
  }
  return n * scale;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--blocks") a.blocks = std::atoi(value().c_str());
    else if (flag == "--seed") a.seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (flag == "--dataset") a.dataset = value();
    else if (flag == "--fault") a.fault_scenario = value();
    else if (flag == "--epoch") a.epoch = parse_duration(value());
    else if (flag == "--readers") a.readers = std::atoi(value().c_str());
    else if (flag == "--feed-capacity")
      a.feed_capacity = std::strtoull(value().c_str(), nullptr, 10);
    else if (flag == "--threads") a.threads = std::atoi(value().c_str());
    else if (flag == "--no-image") a.keep_image = false;
    else if (flag == "--checkpoint-dir") a.checkpoint_dir = value();
    else if (flag == "--resume") a.resume = true;
    else if (flag == "--stop-after")
      a.stop_after = std::strtoull(value().c_str(), nullptr, 10);
    else usage();
  }
  if (a.blocks <= 0 || a.readers < 0 || a.epoch <= 0) usage();
  return a;
}

std::string image_path(const std::string& dir) { return dir + "/serve.ckpt"; }
std::string fprint_path(const std::string& dir) { return dir + "/serve.fp"; }

/// Persists the fingerprint sidecar guarding a serve checkpoint.
void write_fingerprint(const std::string& dir, std::uint64_t fp) {
  util::StateWriter w;
  w.begin_section(util::state_tag("SRVF"));
  w.u64(fp);
  w.end_section();
  util::write_state_file(fprint_path(dir), w.bytes());
}

std::uint64_t read_fingerprint(const std::string& dir) {
  const auto image = util::read_state_file(fprint_path(dir));
  util::StateReader r(image);
  r.begin_section(util::state_tag("SRVF"));
  const std::uint64_t fp = r.u64();
  r.end_section();
  return fp;
}

double quantile_us(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto i = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  sim::WorldConfig wc;
  wc.num_blocks = a.blocks;
  wc.seed = a.seed;
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset(a.dataset);
  if (a.fault_scenario) {
    fc.faults = fault::scenario(*a.fault_scenario, fc.dataset.window());
  }
  if (a.threads > 0) fc.threads = a.threads;

  core::ServeConfig sc;
  sc.epoch_duration = a.epoch;
  sc.feed_capacity = a.feed_capacity;
  sc.keep_image = a.keep_image || a.checkpoint_dir.has_value();

  const std::uint64_t fp = core::checkpoint_fingerprint(wc, fc, 0);
  core::SnapshotServer server(world, fc, sc);

  if (a.resume && a.checkpoint_dir) {
    try {
      if (read_fingerprint(*a.checkpoint_dir) != fp) {
        throw util::StateError(
            util::StateErrorKind::kBadValue,
            "serve checkpoint was written under a different configuration");
      }
      const auto image = util::read_state_file(image_path(*a.checkpoint_dir));
      util::StateReader r(image);
      server.restore(r);
      std::printf("resumed serve checkpoint (%s)\n",
                  image_path(*a.checkpoint_dir).c_str());
    } catch (const util::StateError& e) {
      std::fprintf(stderr, "cannot resume %s (%s); starting fresh\n",
                   image_path(*a.checkpoint_dir).c_str(), e.what());
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Reader pool: each thread pins the current snapshot and cycles
  // through the query mix, recording per-query latency.
  using Clock = std::chrono::steady_clock;
  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(a.readers));
  std::vector<std::thread> readers;
  const auto& blocks = world.blocks();
  for (int t = 0; t < a.readers; ++t) {
    readers.emplace_back([&, t] {
      auto& lat = latencies[static_cast<std::size_t>(t)];
      std::uint64_t rng = 0x9E3779B97F4A7C15ULL * (t + 1);
      std::uint64_t sink = 0;
      while (!done.load(std::memory_order_relaxed)) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        const auto& b = blocks[rng % blocks.size()];
        const auto q0 = Clock::now();
        const auto snap = server.snapshot();
        if (snap == nullptr) {
          std::this_thread::yield();
          continue;
        }
        switch (rng % 5) {
          case 0: {
            const auto* row = snap->block(b.id);
            if (row != nullptr) sink += row->delivered;
            break;
          }
          case 1: {
            const auto tr = snap->trend(b.id);
            if (!tr.empty()) sink += static_cast<std::uint64_t>(tr.back());
            break;
          }
          case 2:
            sink += snap->alarms_for(b.id).size();
            break;
          case 3: {
            const auto* cs = snap->cell(b.cell());
            if (cs != nullptr) {
              sink += static_cast<std::uint64_t>(cs->alarms_up);
            }
            break;
          }
          default:
            sink += snap->scorecard().blocks_classified;
            break;
        }
        lat.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - q0)
                .count());
      }
      if (sink == 0xFFFFFFFFFFFFFFFFULL) std::puts("");
    });
  }

  // Resume-aware ticker origin: epochs already ingested by a restored
  // image must not be re-fed.  Read before start() — afterwards the
  // writer owns the engine clock.
  std::uint64_t published = static_cast<std::uint64_t>(
      (server.clock() - server.window_start()) / a.epoch);
  server.start();

  // Ingest ticker: feed one epoch, wait for its snapshot, print the
  // scorecard line an analyst would watch.
  bool interrupted = false;
  for (;;) {
    if (g_stop.load() || (a.stop_after > 0 && published >= a.stop_after)) {
      interrupted = g_stop.load();
      break;
    }
    const auto snap_before = server.stats().epochs_published;
    const util::SimTime tick = std::min<util::SimTime>(
        server.window_start() +
            static_cast<std::int64_t>(published + 1) * a.epoch,
        server.window_end());
    if (!server.feed(tick)) break;
    const auto snap = server.wait_for_epoch(snap_before + 1);
    ++published;
    if (snap != nullptr) {
      const auto& s = snap->scorecard();
      std::printf(
          "epoch %3zu  %s  %9zu obs  %5zu watched  %4zu alarms  %s%.1f MB\n",
          s.epoch_index, util::to_string(util::date_of(s.clock)).c_str(),
          s.observations_total, s.blocks_watched,
          s.alarms_down + s.alarms_up,
          s.classification_complete ? "[cls final]  " : "",
          static_cast<double>(snap->bytes()) * 1e-6);
    }
    if (tick >= server.window_end()) break;
  }

  if ((interrupted || (a.stop_after > 0 && published >= a.stop_after)) &&
      a.checkpoint_dir) {
    // Stop in place and persist the snapshot currency.
    server.stop();
    const auto snap = server.snapshot();
    if (snap != nullptr && !snap->image().empty()) {
      std::error_code ec;
      std::filesystem::create_directories(*a.checkpoint_dir, ec);
      util::write_state_file(image_path(*a.checkpoint_dir), snap->image());
      write_fingerprint(*a.checkpoint_dir, fp);
      std::printf("checkpointed epoch %zu to %s (resume with --resume)\n",
                  snap->epoch_index(),
                  image_path(*a.checkpoint_dir).c_str());
    }
    done.store(true);
    for (auto& r : readers) r.join();
    return 0;
  }

  const auto fleet = server.drain();
  done.store(true);
  for (auto& r : readers) r.join();

  // A completed run must not be resumed from a stale image.
  if (a.checkpoint_dir) {
    std::remove(image_path(*a.checkpoint_dir).c_str());
    std::remove(fprint_path(*a.checkpoint_dir).c_str());
  }

  const core::ServeStats stats = server.stats();
  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  std::printf(
      "\nfinalized: %llu epochs, %llu observations, %llu backpressure "
      "waits\n",
      static_cast<unsigned long long>(stats.epochs_published),
      static_cast<unsigned long long>(stats.observations),
      static_cast<unsigned long long>(stats.feed_waits));
  const auto& f = fleet.funnel;
  std::printf(
      "funnel: %lld routed -> %lld responsive -> %lld diurnal -> "
      "%lld wide-swing -> %lld change-sensitive\n",
      static_cast<long long>(f.routed), static_cast<long long>(f.responsive),
      static_cast<long long>(f.diurnal),
      static_cast<long long>(f.wide_swing),
      static_cast<long long>(f.change_sensitive));
  if (a.readers > 0) {
    std::printf("queries: %zu from %d readers | p50 %.1fus p99 %.1fus\n",
                all.size(), a.readers, quantile_us(all, 0.5),
                quantile_us(all, 0.99));
  }
  std::printf("fleet digest %s\n",
              core::digest_hex(core::fleet_digest(fleet)).c_str());
  return 0;
}
